"""Integration tests across substrates: page table ↔ decoupling scheme,
workloads → simulator → analysis cross-checks."""

import numpy as np

from repro.analysis import lru_miss_curve
from repro.core import DecouplingScheme, IcebergAllocator, TLBValueCodec
from repro.mmu import BasePageMM
from repro.pagetable import PageWalker, RadixPageTable
from repro.sim import figure1_curves, simulate, sweep_huge_page_sizes
from repro.workloads import BimodalWorkload, Graph500Workload


class TestPageTableMirrorsDecoupling:
    """The page table is the authoritative map the TLB caches: keeping one
    in lockstep with the decoupling scheme must agree with f at every
    point — the end-to-end version of eq. (4)."""

    def test_translations_agree(self):
        allocator = IcebergAllocator(256, 32, lam=4.0, seed=0)
        codec = TLBValueCodec.for_allocator(64, allocator)
        scheme = DecouplingScheme(allocator, codec)
        table = RadixPageTable(levels=3, bits_per_level=4)

        rng = np.random.default_rng(0)
        active = set()
        for step in range(600):
            vpn = int(rng.integers(0, 512))
            if vpn in active:
                scheme.ram_evict(vpn)
                table.unmap(vpn)
                active.remove(vpn)
            else:
                frame = scheme.ram_insert(vpn)
                if frame is None:
                    scheme.ram_evict(vpn)  # drop the failed page immediately
                    continue
                table.map(vpn, frame)
                active.add(vpn)
        # every mapped page: table walk == decoding function
        for vpn in active:
            t = table.translate(vpn)
            assert t is not None
            decoded = scheme.f(vpn, scheme.psi(vpn // scheme.hmax))
            assert t.pfn == decoded == scheme.frame_of(vpn)
        # every unmapped page inside a touched huge page decodes to -1
        touched_hp = {v // scheme.hmax for v in active}
        for hpn in touched_hp:
            for vpn in range(hpn * scheme.hmax, (hpn + 1) * scheme.hmax):
                if vpn not in active:
                    assert table.translate(vpn) is None
                    assert scheme.f(vpn, scheme.psi(hpn)) == -1

    def test_walker_costs_page_faults_at_full_depth(self):
        table = RadixPageTable()
        walker = PageWalker(table, pwc_entries=16)
        r = walker.walk(12345)
        assert r.translation is None
        assert r.memory_touches <= table.levels


class TestSimulatorVsAnalysis:
    def test_mm_ledger_matches_stack_distances(self):
        """BasePageMM's two LRU caches must agree with the Mattson curve."""
        wl = BimodalWorkload(1 << 12, 1 << 8)
        trace = wl.generate(6000, seed=1)
        mm = BasePageMM(tlb_entries=32, ram_pages=512)
        simulate(mm, trace)
        curve = lru_miss_curve(trace, [32, 512])
        assert mm.ledger.tlb_misses == curve[32]
        assert mm.ledger.ios == curve[512]

    def test_sweep_matches_curves_engine(self):
        wl = BimodalWorkload(1 << 12, 1 << 8)
        trace = wl.generate(6000, seed=2)
        sizes = [1, 4, 16]
        records = sweep_huge_page_sizes(
            trace, tlb_entries=16, ram_pages=512, sizes=sizes, warmup=2000
        )
        curves = figure1_curves(trace, sizes, warmup=2000)
        for rec, cur in zip(records, curves):
            assert rec.tlb_misses == cur.tlb_misses(16)
            assert rec.ios == cur.ios(512)


class TestWorkloadToSimulatorPipeline:
    def test_graph500_full_pipeline(self):
        """Generate → simulate → sane ledger, end to end."""
        wl = Graph500Workload(scale=9, edgefactor=8, graph_seed=0)
        trace = wl.generate(4000, seed=0)
        mm = BasePageMM(tlb_entries=16, ram_pages=wl.ram_pages(0.9))
        ledger = simulate(mm, trace, warmup=1000)
        assert ledger.accesses == 3000
        assert ledger.tlb_hits + ledger.tlb_misses == 3000
        assert 0 <= ledger.ios <= 3000
