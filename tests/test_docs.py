"""Documentation consistency: modules and symbols named in the docs exist.

Docs rot silently; these tests import every ``repro.*`` dotted path
mentioned in DESIGN.md / THEORY.md / API.md and check the benchmark and
example files they reference are present.
"""

import importlib
import re
from pathlib import Path


ROOT = Path(__file__).parent.parent
DOC_FILES = [ROOT / "DESIGN.md", ROOT / "docs" / "THEORY.md", ROOT / "docs" / "API.md",
             ROOT / "README.md", ROOT / "EXPERIMENTS.md", ROOT / "docs" / "TUTORIAL.md"]

_MODULE_RE = re.compile(r"`(repro(?:\.[a-z_0-9]+)+)`")
_BENCH_RE = re.compile(r"bench_[a-z_0-9]+\.py")
_EXAMPLE_RE = re.compile(r"examples/([a-z_0-9]+\.py)")


def _doc_text():
    return "\n".join(p.read_text() for p in DOC_FILES if p.exists())


class TestDocReferences:
    def test_doc_files_exist(self):
        for p in DOC_FILES:
            assert p.exists(), f"missing doc {p}"

    def test_mentioned_modules_import(self):
        text = _doc_text()
        seen = sorted(set(_MODULE_RE.findall(text)))
        assert seen, "no repro.* references found — regex broken?"
        for dotted in seen:
            # the reference may be a module or a module.attribute
            try:
                importlib.import_module(dotted)
                continue
            except ImportError:
                pass
            module, _, attr = dotted.rpartition(".")
            mod = importlib.import_module(module)
            assert hasattr(mod, attr), f"doc references missing symbol {dotted}"

    def test_mentioned_benchmarks_exist(self):
        bench_dir = ROOT / "benchmarks"
        for name in sorted(set(_BENCH_RE.findall(_doc_text()))):
            assert (bench_dir / name).exists(), f"doc references missing {name}"

    def test_mentioned_examples_exist(self):
        for name in sorted(set(_EXAMPLE_RE.findall(_doc_text()))):
            assert (ROOT / "examples" / name).exists(), f"missing example {name}"

    def test_readme_quickstart_code_runs(self):
        """The README's quickstart snippet must stay executable."""
        readme = (ROOT / "README.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", readme, re.DOTALL)
        assert blocks, "README lost its python quickstart"
        snippet = blocks[0].replace("200_000", "20_000").replace("100_000", "10_000")
        exec(compile(snippet, "<readme>", "exec"), {})
