"""Unit tests for the multiply-shift hash families."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hashing import HashFamily, MultiplyShiftHash


class TestMultiplyShiftHash:
    def test_range(self):
        h = MultiplyShiftHash(100, np.random.default_rng(0))
        for x in range(1000):
            assert 0 <= h(x) < 100

    def test_deterministic(self):
        h = MultiplyShiftHash(64, np.random.default_rng(7))
        assert h(12345) == h(12345)

    def test_different_seeds_differ(self):
        h1 = MultiplyShiftHash(1 << 20, np.random.default_rng(1))
        h2 = MultiplyShiftHash(1 << 20, np.random.default_rng(2))
        xs = list(range(64))
        assert [h1(x) for x in xs] != [h2(x) for x in xs]

    def test_vectorized_matches_scalar(self):
        h = MultiplyShiftHash(997, np.random.default_rng(3))
        xs = np.arange(500, dtype=np.int64)
        vec = h.many(xs)
        scalar = np.array([h(int(x)) for x in xs])
        np.testing.assert_array_equal(vec, scalar)

    def test_roughly_uniform(self):
        h = MultiplyShiftHash(16, np.random.default_rng(4))
        counts = np.bincount(h.many(np.arange(16000)), minlength=16)
        # each bin expects 1000; allow generous 30% deviation
        assert counts.min() > 700 and counts.max() < 1300

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            MultiplyShiftHash(0, np.random.default_rng(0))


class TestHashFamily:
    def test_k_functions(self):
        fam = HashFamily(3, 50, seed=0)
        assert len(fam) == 3
        assert len(fam(123)) == 3

    def test_functions_independent(self):
        fam = HashFamily(2, 1 << 16, seed=0)
        xs = range(200)
        h0 = [fam[0](x) for x in xs]
        h1 = [fam[1](x) for x in xs]
        assert h0 != h1

    def test_seed_reproducibility(self):
        a = HashFamily(3, 1000, seed=42)
        b = HashFamily(3, 1000, seed=42)
        assert all(a(x) == b(x) for x in range(100))

    @given(st.integers(min_value=0, max_value=2**50))
    def test_all_candidates_in_range(self, x):
        fam = HashFamily(3, 37, seed=9)
        assert all(0 <= b < 37 for b in fam(x))
