"""Cross-component fuzzing: whole-system invariants under random traffic.

These tests drive the full stacks (decoupled system, THP, nested MM) with
hypothesis-generated traces and assert the structural invariants that the
unit tests check only pointwise.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DecoupledSystem,
    DecouplingScheme,
    IcebergAllocator,
    TLBValueCodec,
    huge_page_trace,
    paging_faults,
)
from repro.mmu import THPStyleMM
from repro.paging import LRUPolicy


def build_system(frames=128, tlb_entries=6, ram_capacity=96, seed=0):
    allocator = IcebergAllocator(frames, 16, lam=4.0, seed=seed)
    codec = TLBValueCodec.for_allocator(64, allocator)
    return DecoupledSystem(
        tlb_entries, ram_capacity, LRUPolicy(), LRUPolicy(),
        DecouplingScheme(allocator, codec),
    )


traces = st.lists(st.integers(0, 400), min_size=1, max_size=400)


class TestDecoupledSystemFuzz:
    @given(traces)
    @settings(max_examples=40, deadline=None)
    def test_invariants_hold(self, trace):
        z = build_system()
        z.run(trace)
        z.check_invariants()

    @given(traces, st.integers(0, 3))
    @settings(max_examples=30, deadline=None)
    def test_matches_reference_caches(self, trace, seed):
        """Theorem 4's construction, checked as an executable identity:
        without paging failures, Z's TLB misses equal LRU-on-r(p) faults
        and Z's IOs equal LRU-on-p faults at (1-δ)P."""
        z = build_system(seed=seed)
        z.run(trace)
        if z.ledger.paging_failures:
            return  # identity holds only modulo the failure term
        hp = huge_page_trace(trace, z.hmax)
        assert z.ledger.tlb_misses == paging_faults(hp, z.tlb.entries, LRUPolicy())
        assert z.ledger.ios == paging_faults(trace, z.ram.capacity, LRUPolicy())

    @given(traces)
    @settings(max_examples=30, deadline=None)
    def test_every_resident_page_decodes(self, trace):
        """Eq. (4) across the whole resident set after arbitrary traffic."""
        z = build_system()
        z.run(trace)
        scheme = z.scheme
        for vpn in scheme.active_set:
            hpn = vpn // z.hmax
            decoded = scheme.f(vpn, scheme.psi(hpn))
            if scheme.is_failed(vpn):
                assert decoded == -1
            else:
                assert decoded == scheme.frame_of(vpn)

    @given(traces)
    @settings(max_examples=30, deadline=None)
    def test_cost_conservation(self, trace):
        """Every access is accounted exactly once in hits+misses."""
        z = build_system()
        z.run(trace)
        assert z.ledger.tlb_hits + z.ledger.tlb_misses == len(trace)
        assert z.ledger.accesses == len(trace)


class TestTHPFuzz:
    @given(traces, st.sampled_from([2, 4, 8]), st.sampled_from([0.25, 0.75, 1.0]))
    @settings(max_examples=40, deadline=None)
    def test_invariants_hold(self, trace, h, util):
        mm = THPStyleMM(8, 64, huge_page_size=h, promote_utilization=util)
        mm.run(trace)
        mm.check_invariants()

    @given(traces)
    @settings(max_examples=20, deadline=None)
    def test_frames_never_leak_under_heavy_churn(self, trace):
        mm = THPStyleMM(4, 32, huge_page_size=4, promote_utilization=0.5)
        mm.run(trace)
        mm.run(trace[::-1])
        mm.check_invariants()
        assert 0 <= mm.memory.free_frames <= 32


class TestDeterminism:
    def test_decoupled_system_is_deterministic(self):
        rng = np.random.default_rng(0)
        trace = rng.integers(0, 500, 2000).tolist()
        a = build_system(seed=7)
        b = build_system(seed=7)
        a.run(trace)
        b.run(trace)
        assert a.ledger.as_dict() == b.ledger.as_dict()
        assert sorted(a.scheme.active_set) == sorted(b.scheme.active_set)

    def test_different_hash_seeds_differ_internally_not_in_cost(self):
        """Hash seeds move pages to different frames but — absent failures —
        never change the cost profile (costs depend only on X and Y)."""
        rng = np.random.default_rng(1)
        trace = rng.integers(0, 500, 2000).tolist()
        a = build_system(seed=1)
        b = build_system(seed=2)
        a.run(trace)
        b.run(trace)
        if a.ledger.paging_failures == 0 and b.ledger.paging_failures == 0:
            assert a.ledger.ios == b.ledger.ios
            assert a.ledger.tlb_misses == b.ledger.tlb_misses
