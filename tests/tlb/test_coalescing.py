"""Tests for the CoLT-style coalescing TLB."""

import pytest

from repro.core import FullyAssociativeAllocator, IcebergAllocator
from repro.tlb import CoalescingTLB


class TestBasics:
    def test_miss_then_hit(self):
        tlb = CoalescingTLB(entries=4)
        assert tlb.lookup(10) is None
        tlb.fill(10, 100)
        assert tlb.lookup(10) == 100
        assert tlb.hits == 1 and tlb.misses == 1

    def test_double_fill_raises(self):
        tlb = CoalescingTLB(entries=4)
        tlb.fill(1, 1)
        with pytest.raises(ValueError):
            tlb.fill(1, 2)

    def test_lru_eviction_of_runs(self):
        tlb = CoalescingTLB(entries=2, max_coalesce=4)
        tlb.fill(0, 50)  # entry A
        tlb.fill(10, 70)  # entry B
        tlb.fill(20, 90)  # evicts A (LRU)
        assert 0 not in tlb
        assert 10 in tlb and 20 in tlb

    def test_invalidate_drops_whole_run(self):
        tlb = CoalescingTLB(entries=4)
        tlb.fill(5, 100)
        tlb.fill(6, 101)  # coalesced
        tlb.invalidate(5)
        assert 5 not in tlb and 6 not in tlb
        with pytest.raises(KeyError):
            tlb.invalidate(5)


class TestCoalescing:
    def test_forward_extension(self):
        tlb = CoalescingTLB(entries=4, max_coalesce=8)
        for i in range(5):
            tlb.fill(i, 100 + i)
        assert len(tlb) == 1  # one run entry covers all five
        assert tlb.coverage == 5
        assert tlb.coalesces == 4
        for i in range(5):
            assert tlb.lookup(i) == 100 + i

    def test_backward_extension(self):
        tlb = CoalescingTLB(entries=4)
        tlb.fill(6, 106)
        tlb.fill(5, 105)  # extends the run leftwards
        assert len(tlb) == 1
        assert tlb.lookup(5) == 105 and tlb.lookup(6) == 106

    def test_non_contiguous_pfn_not_coalesced(self):
        tlb = CoalescingTLB(entries=4)
        tlb.fill(0, 100)
        tlb.fill(1, 200)  # contiguous vpn, discontiguous pfn
        assert len(tlb) == 2
        assert tlb.coalesces == 0

    def test_max_coalesce_respected(self):
        tlb = CoalescingTLB(entries=8, max_coalesce=3)
        for i in range(7):
            tlb.fill(i, i)
        assert len(tlb) == 3  # runs of 3, 3, 1
        assert tlb.mean_run_length == pytest.approx(7 / 3)

    def test_reach_multiplier(self):
        tlb = CoalescingTLB(entries=2, max_coalesce=16)
        for i in range(32):
            tlb.fill(i, 1000 + i)
        assert len(tlb) == 2
        assert tlb.coverage == 32  # 2 tags cover 32 translations


class TestContiguityDependence:
    """The architectural point: coalescing reach exists only when the
    allocator happens to produce contiguity."""

    def run_through(self, allocator, n=64):
        tlb = CoalescingTLB(entries=64, max_coalesce=16)
        for vpn in range(n):
            frame = allocator.allocate(vpn)
            if frame is not None:
                tlb.fill(vpn, frame)
        return tlb

    def test_sequential_allocation_coalesces(self):
        tlb = self.run_through(FullyAssociativeAllocator(256))
        assert tlb.mean_run_length > 4  # long incidental runs

    def test_hashed_allocation_defeats_coalescing(self):
        tlb = self.run_through(IcebergAllocator(256, 32, lam=4.0, seed=0))
        assert tlb.mean_run_length < 2  # hashed placement: no contiguity

    def test_decoupling_motivation(self):
        """The contrast that motivates decoupling over coalescing: hashed
        low-associativity allocation gives compact *encodings* without
        needing the physical contiguity coalescing depends on."""
        seq = self.run_through(FullyAssociativeAllocator(256))
        hashed = self.run_through(IcebergAllocator(256, 32, lam=4.0, seed=0))
        assert seq.mean_run_length > 2 * hashed.mean_run_length
