"""Surface parity for the ASID wrappers, mirroring TestTLBSurfaceParity.

:class:`AsidTaggedTLB` and :class:`FlushingTLB` promise the full
statistics/maintenance surface of the plain :class:`TLB` (``fills``,
``accesses``, ``reset_stats``, ``resident``, ``peek``, ``invalidate``,
``check_invariants``) so probes and the multi-tenant driver can treat the
three interchangeably. This pins that surface, the wrapper-specific
semantics (flush-survival of counters, ``invalidate_asid``), and the
recency-stamp monotonicity of fills through the wrappers.
"""

import pytest

from repro.paging import LRUPolicy
from repro.tlb import AsidTaggedTLB, FlushingTLB

ASID_FACTORIES = {
    "tagged": lambda **kw: AsidTaggedTLB(entries=8, value_bits=16, **kw),
    "flushing": lambda **kw: FlushingTLB(entries=8, value_bits=16, **kw),
}


class TestAsidSurfaceParity:
    @pytest.mark.parametrize("flavour", sorted(ASID_FACTORIES))
    def test_counter_surface(self, flavour):
        tlb = ASID_FACTORIES[flavour]()
        assert tlb.value_bits == 16
        assert tlb.lookup(0, 3) is None
        tlb.fill(0, 3, 9)
        assert tlb.lookup(0, 3) == 9
        assert (tlb.hits, tlb.misses, tlb.fills) == (1, 1, 1)
        assert tlb.accesses == 2 and tlb.miss_rate == 0.5
        tlb.check_invariants()
        tlb.reset_stats()
        assert (tlb.hits, tlb.misses, tlb.fills) == (0, 0, 0)
        assert tlb.switches == 0  # reset covers the wrapper counter too
        assert (0, 3) in tlb  # stats reset keeps residency

    @pytest.mark.parametrize("flavour", sorted(ASID_FACTORIES))
    def test_value_bits_enforced(self, flavour):
        tlb = ASID_FACTORIES[flavour]()
        tlb.lookup(0, 1)
        tlb.fill(0, 1, (1 << 16) - 1)
        with pytest.raises(ValueError, match="w=16"):
            tlb.fill(0, 2, 1 << 16)

    @pytest.mark.parametrize("flavour", sorted(ASID_FACTORIES))
    def test_update_invalidate_peek(self, flavour):
        tlb = ASID_FACTORIES[flavour]()
        tlb.lookup(0, 4)
        tlb.fill(0, 4, 7)
        tlb.update(0, 4, 8)
        assert tlb.peek(0, 4) == 8
        accesses = tlb.accesses
        assert tlb.peek(0, 4) == 8  # peek never touches stats
        assert tlb.accesses == accesses
        tlb.invalidate(0, 4)
        assert tlb.peek(0, 4) is None
        assert len(tlb) == 0

    @pytest.mark.parametrize("flavour", sorted(ASID_FACTORIES))
    def test_resident_yields_tagged_keys(self, flavour):
        tlb = ASID_FACTORIES[flavour]()
        tlb.lookup(2, 5)
        tlb.fill(2, 5)
        tlb.fill(2, 6)
        assert sorted(tlb.resident()) == [(2, 5), (2, 6)]
        tlb.check_invariants()

    @pytest.mark.parametrize("flavour", sorted(ASID_FACTORIES))
    def test_reset_stats_zeroes_switches(self, flavour):
        tlb = ASID_FACTORIES[flavour]()
        tlb.lookup(0, 1)
        tlb.lookup(1, 1)
        tlb.lookup(0, 1)
        assert tlb.switches == 2
        tlb.reset_stats()
        assert tlb.switches == 0 and tlb.accesses == 0


class TestInvalidateAsid:
    def test_tagged_drops_only_the_target_tenant(self):
        tlb = AsidTaggedTLB(entries=8)
        for asid, hpn in [(0, 1), (0, 2), (1, 1), (1, 3)]:
            tlb.lookup(asid, hpn)
            tlb.fill(asid, hpn)
        assert tlb.invalidate_asid(0) == 2
        assert sorted(tlb.resident()) == [(1, 1), (1, 3)]
        assert tlb.invalidate_asid(0) == 0  # idempotent
        tlb.check_invariants()

    def test_flushing_only_current_asid_can_be_dropped(self):
        tlb = FlushingTLB(entries=8)
        tlb.lookup(0, 1)
        tlb.fill(0, 1)
        assert tlb.invalidate_asid(1) == 0  # already flushed by construction
        assert tlb.invalidate_asid(0) == 1
        assert len(tlb) == 0

    def test_flushing_rejects_foreign_maintenance(self):
        tlb = FlushingTLB(entries=8)
        tlb.lookup(0, 1)
        tlb.fill(0, 1)
        with pytest.raises(KeyError, match="flushed"):
            tlb.invalidate(1, 1)
        with pytest.raises(KeyError, match="flushed"):
            tlb.update(1, 1, 0)
        assert tlb.peek(1, 1) is None
        with pytest.raises(ValueError):
            tlb.fill(1, 1)


class TestFlushSemantics:
    def test_fills_survive_flushes(self):
        tlb = FlushingTLB(entries=8)
        for asid in (0, 1, 0, 1):
            if tlb.lookup(asid, 3) is None:
                tlb.fill(asid, 3)
        # every switch flushed the single entry, so every round refilled it
        assert tlb.fills == 4
        assert (tlb.hits, tlb.misses) == (0, 4)
        assert tlb.accesses == 4

    def test_tagged_capacity_eviction_reports_victim(self):
        tlb = AsidTaggedTLB(entries=2)
        tlb.lookup(0, 1)
        tlb.fill(0, 1)
        tlb.fill(0, 2)
        victim = tlb.fill(1, 9)  # full: somebody's entry goes
        assert victim == (0, 1)  # LRU across tenants — capacity is shared
        tlb.check_invariants()


class _StampRecordingLRU(LRUPolicy):
    """LRU that records insert stamps, to observe fills through a wrapper."""

    def __init__(self):
        super().__init__()
        self.stamps = []

    def insert(self, key, time):
        self.stamps.append(time)
        super().insert(key, time)


class TestWrapperStampMonotonicity:
    """The wrappers must not regress the strict fill-stamp clock: multiple
    fills under one access still get strictly increasing recency stamps."""

    def test_tagged_multi_fill_stamps_strictly_increase(self):
        rec = _StampRecordingLRU()
        tlb = AsidTaggedTLB(entries=8, policy=rec)
        assert tlb.lookup(0, 0) is None  # one access...
        tlb.fill(0, 0)
        tlb.fill(0, 1)  # ...installing three entries
        tlb.fill(1, 0)
        assert rec.stamps == sorted(set(rec.stamps)), (
            f"fill stamps not strictly monotone: {rec.stamps}"
        )

    def test_flushing_stamps_restart_after_flush(self):
        stamps = []

        class Rec(_StampRecordingLRU):
            def insert(self, key, time):
                stamps.append(time)
                LRUPolicy.insert(self, key, time)

        tlb = FlushingTLB(entries=8, policy_factory=Rec)
        tlb.lookup(0, 0)
        tlb.fill(0, 0)
        tlb.fill(0, 1)
        assert stamps == sorted(set(stamps))
        tlb.lookup(1, 0)  # flush: fresh inner TLB, fresh clock
        tlb.fill(1, 0)
        tlb.fill(1, 1)
        assert stamps[2:] == sorted(set(stamps[2:]))
