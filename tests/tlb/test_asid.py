"""Tests for ASID-tagged vs flushing TLBs."""

import numpy as np
import pytest

from repro.tlb import AsidTaggedTLB, FlushingTLB


class TestAsidTagged:
    def test_asids_isolated(self):
        tlb = AsidTaggedTLB(entries=8)
        tlb.lookup(0, 5)
        tlb.fill(0, 5, 100)
        assert tlb.lookup(0, 5) == 100
        assert tlb.lookup(1, 5) is None  # other address space

    def test_switch_counting(self):
        tlb = AsidTaggedTLB(entries=8)
        tlb.lookup(0, 1)
        tlb.lookup(1, 1)
        tlb.lookup(0, 1)
        assert tlb.switches == 2

    def test_entries_survive_switches(self):
        tlb = AsidTaggedTLB(entries=8)
        tlb.lookup(0, 1)
        tlb.fill(0, 1)
        tlb.lookup(1, 9)
        tlb.fill(1, 9)
        assert tlb.lookup(0, 1) is not None  # still warm after a switch


class TestFlushing:
    def test_flush_on_switch(self):
        tlb = FlushingTLB(entries=8)
        tlb.lookup(0, 1)
        tlb.fill(0, 1)
        assert tlb.lookup(0, 1) is not None
        tlb.lookup(1, 9)  # switch: everything gone
        tlb.fill(1, 9)
        assert tlb.lookup(0, 1) is None  # switch back: cold again
        assert tlb.switches == 2

    def test_fill_requires_current_asid(self):
        tlb = FlushingTLB(entries=8)
        tlb.lookup(0, 1)
        with pytest.raises(ValueError):
            tlb.fill(1, 1)

    def test_stats_accumulate_across_flushes(self):
        tlb = FlushingTLB(entries=8)
        for asid in (0, 1, 0, 1):
            if tlb.lookup(asid, 3) is None:
                tlb.fill(asid, 3)
        assert tlb.misses == 4  # every switch flushed the entry
        assert tlb.hits == 0


class TestTaggedBeatsFlushing:
    def test_fine_grained_switching(self):
        """At SMT-like switch granularity, tagging wins decisively — the
        hardware trend the paper's intro references."""
        rng = np.random.default_rng(0)
        tagged = AsidTaggedTLB(entries=64)
        flushing = FlushingTLB(entries=64)
        for i in range(8000):
            asid = i % 4
            hpn = int(rng.zipf(1.4)) % 32
            for tlb in (tagged, flushing):
                if tlb.lookup(asid, hpn) is None:
                    tlb.fill(asid, hpn)
        assert tagged.miss_rate < flushing.miss_rate / 2

    def test_tagged_capacity_contention(self):
        """Tagging is not free: tenants now share capacity, so a single
        tenant sees a smaller effective TLB — the other half of the
        paper's observation."""
        rng = np.random.default_rng(1)
        solo = AsidTaggedTLB(entries=32)
        shared = AsidTaggedTLB(entries=32)
        for i in range(6000):
            hpn = int(rng.zipf(1.3)) % 40
            if solo.lookup(0, hpn) is None:
                solo.fill(0, hpn)
            asid = i % 4
            if shared.lookup(asid, hpn) is None:
                shared.fill(asid, hpn)
        assert shared.miss_rate > solo.miss_rate
