"""Differential fuzzing of the coalescing TLB against a flat reference.

The coalescing TLB's *translations* must always agree with a plain
dict of the fills that are still covered; only its capacity accounting
(runs vs entries) differs from a normal TLB.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tlb import CoalescingTLB


@st.composite
def op_sequences(draw):
    return draw(
        st.lists(
            st.tuples(
                st.sampled_from(["fill", "lookup", "invalidate"]),
                st.integers(0, 30),
            ),
            max_size=250,
        )
    )


class TestCoalescingDifferential:
    @given(op_sequences())
    @settings(max_examples=60, deadline=None)
    def test_translations_always_correct(self, ops):
        """Whatever coalescing/eviction does internally, a hit must return
        the pfn originally filled for that vpn."""
        tlb = CoalescingTLB(entries=4, max_coalesce=4)
        filled: dict[int, int] = {}  # vpn -> pfn as installed
        next_pfn = 0
        for op, vpn in ops:
            if op == "fill":
                if vpn in tlb:
                    continue
                # alternate contiguous and scattered pfns to exercise both
                pfn = filled.get(vpn - 1, next_pfn * 7) + 1
                tlb.fill(vpn, pfn)
                filled[vpn] = pfn
                next_pfn += 1
            elif op == "lookup":
                out = tlb.lookup(vpn)
                if out is not None:
                    assert out == filled[vpn], f"wrong translation for {vpn}"
            else:
                if vpn in tlb:
                    tlb.invalidate(vpn)

    @given(op_sequences())
    @settings(max_examples=60, deadline=None)
    def test_structural_invariants(self, ops):
        tlb = CoalescingTLB(entries=3, max_coalesce=5)
        for op, vpn in ops:
            if op == "fill" and vpn not in tlb:
                tlb.fill(vpn, vpn + 1000)
            elif op == "invalidate" and vpn in tlb:
                tlb.invalidate(vpn)
            else:
                tlb.lookup(vpn)
            # entries bounded; coverage consistent with run lengths
            assert len(tlb) <= 3
            assert tlb.coverage <= 3 * 5
            if len(tlb):
                assert tlb.mean_run_length * len(tlb) == tlb.coverage
