"""Tests for TLB entries and huge-page coverage arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.tlb import TLBEntry, coverage_range, huge_page_of


class TestHugePageOf:
    def test_identity_at_base_size(self):
        assert huge_page_of(123, 1) == 123

    def test_grouping(self):
        assert huge_page_of(0, 8) == 0
        assert huge_page_of(7, 8) == 0
        assert huge_page_of(8, 8) == 1

    @given(st.integers(0, 2**40), st.sampled_from([1, 2, 16, 512, 1024]))
    def test_matches_paper_r_function(self, vpn, h):
        """r(v) = v - (v mod h); our hpn is r(v)/h."""
        assert huge_page_of(vpn, h) * h == vpn - (vpn % h)


class TestCoverageRange:
    def test_base(self):
        assert list(coverage_range(5, 1)) == [5]

    def test_huge(self):
        assert list(coverage_range(2, 4)) == [8, 9, 10, 11]


class TestTLBEntry:
    def test_valid(self):
        e = TLBEntry(hpn=3, page_size=4, value=10)
        assert e.coverage == range(12, 16)
        assert e.covers(13)
        assert not e.covers(16)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            TLBEntry(hpn=0, page_size=3)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            TLBEntry(hpn=-1, page_size=2)
        with pytest.raises(ValueError):
            TLBEntry(hpn=0, page_size=2, value=-1)

    def test_frozen(self):
        e = TLBEntry(hpn=0, page_size=1)
        with pytest.raises(AttributeError):
            e.hpn = 1
