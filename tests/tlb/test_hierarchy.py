"""Tests for the two-level TLB hierarchy."""

import numpy as np
import pytest

from repro.tlb import TwoLevelTLB


class TestBasics:
    def test_size_ordering_enforced(self):
        with pytest.raises(ValueError):
            TwoLevelTLB(64, 16)

    def test_miss_then_both_levels_hit(self):
        t = TwoLevelTLB(2, 8)
        assert t.lookup(1) is None
        t.fill(1, 100)
        assert t.lookup(1) == 100
        assert t.l1_hits == 1 and t.misses == 1

    def test_l2_hit_promotes_to_l1(self):
        t = TwoLevelTLB(1, 8)
        t.fill(1, 10)
        t.fill(2, 20)  # L1 (size 1) now holds 2 only
        assert t.lookup(1) == 10  # L2 hit
        assert t.l2_hits == 1
        assert t.lookup(1) == 10  # now L1 hit
        assert t.l1_hits == 1

    def test_inclusion_on_l2_eviction(self):
        t = TwoLevelTLB(2, 2)
        t.fill(1, 10)
        t.fill(2, 20)
        t.fill(3, 30)  # L2 evicts LRU (1); inclusion removes it from L1 too
        assert 1 not in t
        assert t.lookup(1) is None
        assert t.misses == 1

    def test_invalidate_both_levels(self):
        t = TwoLevelTLB(2, 8)
        t.fill(1, 10)
        t.invalidate(1)
        assert t.lookup(1) is None

    def test_reset_stats(self):
        t = TwoLevelTLB(2, 8)
        t.fill(1)
        t.lookup(1)
        t.reset_stats()
        assert t.accesses == 0


class TestEffectiveEpsilon:
    def test_zero_before_traffic(self):
        assert TwoLevelTLB(2, 8).effective_epsilon(0.001, 0.01) == 0.0

    def test_pure_l1_hits_cost_nothing(self):
        t = TwoLevelTLB(4, 8)
        t.fill(1, 1)
        for _ in range(100):
            t.lookup(1)
        assert t.effective_epsilon(0.001, 0.01) < 0.001

    def test_hierarchy_cheaper_than_flat_small_tlb(self):
        """The design point: a 64-entry L1 + 1024-entry L2 gets close to
        the big TLB's miss rate at the small TLB's hit latency."""
        rng = np.random.default_rng(0)
        trace = (rng.zipf(1.2, 20_000) % 2048).tolist()
        hier = TwoLevelTLB(64, 1024)
        for hpn in trace:
            if hier.lookup(hpn) is None:
                hier.fill(hpn)
        # L2 catches most of what L1 misses
        assert hier.l2_hits > 0
        assert hier.misses < (hier.l2_hits + hier.misses) * 0.9
        # effective epsilon far below paying the walk on every L1 miss
        l1_miss_cost, walk_cost = 0.0007, 0.02  # ~7 cycles vs ~200, in IO units
        flat_worst = (hier.l2_hits + hier.misses) / hier.accesses * (
            l1_miss_cost + walk_cost
        )
        assert hier.effective_epsilon(l1_miss_cost, walk_cost) < flat_worst

    def test_counts_partition_accesses(self):
        rng = np.random.default_rng(1)
        t = TwoLevelTLB(4, 32)
        for hpn in rng.integers(0, 100, 2000):
            if t.lookup(int(hpn)) is None:
                t.fill(int(hpn))
        assert t.l1_hits + t.l2_hits + t.misses == 2000
