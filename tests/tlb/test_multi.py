"""Tests for the multi-size TLB bank."""

import pytest

from repro.tlb import CASCADE_LAKE_L2, MultiSizeTLB


class TestMultiSizeTLB:
    def test_layout_validation(self):
        with pytest.raises(ValueError):
            MultiSizeTLB({})
        with pytest.raises(ValueError):
            MultiSizeTLB({3: 16})

    def test_lookup_routes_by_size(self):
        tlb = MultiSizeTLB({1: 4, 8: 2})
        tlb.fill(vpn=9, page_size=1, value=1)
        tlb.fill(vpn=9, page_size=8, value=2)  # hpn 1 in the size-8 bank
        assert tlb.lookup(9, 1) == 1
        assert tlb.lookup(9, 8) == 2
        assert tlb.lookup(15, 8) == 2  # same huge page covers vpn 15

    def test_unsupported_size(self):
        tlb = MultiSizeTLB({1: 4})
        with pytest.raises(KeyError, match="supported sizes"):
            tlb.lookup(0, 2)

    def test_tiny_dedicated_bank_limits_coverage(self):
        """The paper's footnote 1 / Section 7 point: a 1 GB-page TLB with 16
        entries thrashes once more than 16 huge pages are hot."""
        tlb = MultiSizeTLB({1: 1536, 512 * 512: 16})
        huge = 512 * 512
        hot = [i * huge for i in range(32)]  # 32 distinct 1GB pages
        for _ in range(3):
            for vpn in hot:
                if tlb.lookup(vpn, huge) is None:
                    tlb.fill(vpn, huge)
        bank = tlb.bank_for(huge)
        assert bank.misses == 3 * 32  # LRU thrash: every access misses

    def test_aggregate_counters(self):
        tlb = MultiSizeTLB({1: 2, 2: 2})
        tlb.lookup(0, 1)
        tlb.fill(0, 1)
        tlb.lookup(0, 1)
        tlb.lookup(0, 2)
        assert tlb.accesses == 3
        assert tlb.hits == 1
        assert 0 < tlb.miss_rate < 1
        tlb.reset_stats()
        assert tlb.accesses == 0

    def test_invalidate(self):
        tlb = MultiSizeTLB({2: 2})
        tlb.fill(4, 2, value=3)
        tlb.invalidate(4, 2)
        assert tlb.lookup(4, 2) is None

    def test_cascade_lake_constant_shape(self):
        assert CASCADE_LAKE_L2[1] == 1536
        assert CASCADE_LAKE_L2[512] == 1536
        assert CASCADE_LAKE_L2[512 * 512] == 16
        MultiSizeTLB(CASCADE_LAKE_L2)  # constructible
