"""Tests for the sequential translation prefetcher."""

import numpy as np
import pytest

from repro.tlb import TLB, PrefetchingTLB


def make(entries=8, degree=1):
    return PrefetchingTLB(entries, translate=lambda hpn: hpn * 10, degree=degree)


class TestMechanics:
    def test_degree_validated(self):
        with pytest.raises(ValueError):
            PrefetchingTLB(8, translate=lambda h: 0, degree=0)

    def test_prefetch_installs_next(self):
        tlb = make(degree=2)
        tlb.fill(5, 50)
        assert 6 in tlb and 7 in tlb
        assert tlb.prefetches == 2
        assert tlb.lookup(6) == 60  # translated via the callback

    def test_useful_prefetch_counted_once(self):
        tlb = make()
        tlb.fill(1, 10)
        tlb.lookup(2)
        tlb.lookup(2)
        assert tlb.useful_prefetches == 1
        assert tlb.accuracy == 1.0

    def test_existing_entries_not_refetched(self):
        tlb = make(degree=1)
        tlb.fill(2, 20)  # prefetches 3
        before = tlb.prefetches
        tlb.fill(4, 40)  # would prefetch 5; 3 already present untouched
        assert 3 in tlb
        assert tlb.prefetches == before + 1  # only page 5

    def test_evicted_prefetch_not_counted_useful(self):
        tlb = PrefetchingTLB(2, translate=lambda h: h, degree=1)
        tlb.fill(1)  # + prefetch 2 -> TLB full
        tlb.fill(10)  # evicts; prefetch 11 evicts more
        tlb.lookup(2)
        assert tlb.useful_prefetches == 0


class TestWorkloadEffects:
    def run(self, trace, degree):
        pf = PrefetchingTLB(64, translate=lambda h: h, degree=degree)
        for hpn in trace:
            hpn = int(hpn)
            if pf.lookup(hpn) is None:
                pf.fill(hpn, hpn)
        return pf

    def test_scan_loves_prefetch(self):
        trace = np.arange(4000) % 1024  # sequential, bigger than the TLB
        baseline = TLB(64)
        for hpn in trace:
            if baseline.lookup(int(hpn)) is None:
                baseline.fill(int(hpn))
        pf = self.run(trace, degree=4)
        assert pf.misses < baseline.misses / 3
        assert pf.accuracy > 0.9

    def test_random_suffers_pollution(self):
        rng = np.random.default_rng(0)
        trace = rng.integers(0, 1 << 12, 6000)
        baseline = TLB(64)
        for hpn in trace:
            if baseline.lookup(int(hpn)) is None:
                baseline.fill(int(hpn))
        pf = self.run(trace, degree=4)
        assert pf.accuracy < 0.1  # prefetches useless
        assert pf.misses >= baseline.misses  # and they pollute

    def test_huge_pages_reduce_prefetch_value(self):
        """The [10] observation: with huge pages, sequential misses mostly
        vanish, so prefetching has little left to fetch."""
        base_trace = np.arange(32_000) % (1 << 13)
        for h, min_useful in ((1, 1000), (64, 0)):
            hp = base_trace // h
            pf = self.run(hp, degree=2)
            if h == 1:
                assert pf.useful_prefetches > min_useful
            else:
                small = pf.useful_prefetches
        assert small < 1000
