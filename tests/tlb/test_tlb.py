"""Tests for the fully-associative and set-associative TLB models."""

import pytest

from repro.paging import FIFOPolicy
from repro.tlb import TLB, SetAssociativeTLB


class TestTLBBasics:
    def test_miss_then_hit(self):
        tlb = TLB(entries=2)
        assert tlb.lookup(10) is None
        tlb.fill(10, value=7)
        assert tlb.lookup(10) == 7
        assert tlb.hits == 1 and tlb.misses == 1

    def test_capacity_and_eviction(self):
        tlb = TLB(entries=2)
        tlb.fill(1, 0)
        tlb.fill(2, 0)
        victim = tlb.fill(3, 0)
        assert victim == 1  # LRU default
        assert len(tlb) == 2
        assert 1 not in tlb

    def test_lru_ordering_respects_hits(self):
        tlb = TLB(entries=2)
        tlb.fill(1, 0)
        tlb.fill(2, 0)
        tlb.lookup(1)  # 2 is now LRU
        assert tlb.fill(3, 0) == 2

    def test_double_fill_raises(self):
        tlb = TLB(entries=2)
        tlb.fill(1, 0)
        with pytest.raises(ValueError, match="already resident"):
            tlb.fill(1, 0)

    def test_update_value(self):
        tlb = TLB(entries=2)
        tlb.fill(1, 5)
        tlb.update(1, 9)
        assert tlb.peek(1) == 9
        with pytest.raises(KeyError):
            tlb.update(2, 0)

    def test_value_bits_enforced(self):
        tlb = TLB(entries=2, value_bits=8)
        tlb.fill(1, 255)
        with pytest.raises(ValueError, match="w=8"):
            tlb.fill(2, 256)
        with pytest.raises(ValueError):
            tlb.update(1, -1)

    def test_invalidate(self):
        tlb = TLB(entries=2)
        tlb.fill(1, 0)
        tlb.invalidate(1)
        assert 1 not in tlb
        with pytest.raises(KeyError):
            tlb.invalidate(1)

    def test_peek_does_not_touch_stats(self):
        tlb = TLB(entries=2)
        tlb.fill(1, 3)
        assert tlb.peek(1) == 3
        assert tlb.peek(2) is None
        assert tlb.hits == 0 and tlb.misses == 0

    def test_miss_rate(self):
        tlb = TLB(entries=4)
        assert tlb.miss_rate == 0.0
        tlb.lookup(1)
        tlb.fill(1)
        tlb.lookup(1)
        assert tlb.miss_rate == 0.5

    def test_custom_policy(self):
        tlb = TLB(entries=2, policy=FIFOPolicy())
        tlb.fill(1, 0)
        tlb.fill(2, 0)
        tlb.lookup(1)  # FIFO ignores the hit
        assert tlb.fill(3, 0) == 1

    def test_reset_stats(self):
        tlb = TLB(entries=2)
        tlb.lookup(1)
        tlb.fill(1)
        tlb.reset_stats()
        assert tlb.hits == 0 and tlb.misses == 0 and tlb.fills == 0
        assert 1 in tlb


class TestSetAssociativeTLB:
    def test_divisibility_enforced(self):
        with pytest.raises(ValueError):
            SetAssociativeTLB(entries=10, associativity=4)

    def test_keys_partition_into_sets(self):
        tlb = SetAssociativeTLB(entries=8, associativity=2)  # 4 sets
        # keys 0, 4, 8 all map to set 0; capacity 2 per set
        tlb.fill(0)
        tlb.fill(4)
        tlb.fill(8)
        assert len(tlb) == 2
        assert 0 not in tlb  # evicted within set 0 despite global space

    def test_conflict_misses_exceed_fully_associative(self):
        """The motivating weakness of set-associativity: conflict misses."""
        full = TLB(entries=8)
        seta = SetAssociativeTLB(entries=8, associativity=2)
        trace = [0, 4, 8, 12] * 50  # all collide in set 0
        for hpn in trace:
            if full.lookup(hpn) is None:
                full.fill(hpn)
            if seta.lookup(hpn) is None:
                seta.fill(hpn)
        assert full.misses == 4  # compulsory only
        assert seta.misses > full.misses

    def test_aggregate_stats(self):
        tlb = SetAssociativeTLB(entries=4, associativity=2)
        tlb.lookup(0)
        tlb.fill(0, 9)
        assert tlb.lookup(0) == 9
        assert tlb.hits == 1 and tlb.misses == 1 and tlb.accesses == 2
        assert tlb.miss_rate == 0.5
        tlb.reset_stats()
        assert tlb.accesses == 0

    def test_update_invalidate_peek(self):
        tlb = SetAssociativeTLB(entries=4, associativity=2)
        tlb.fill(3, 1)
        tlb.update(3, 2)
        assert tlb.peek(3) == 2
        tlb.invalidate(3)
        assert tlb.peek(3) is None

    def test_resident_iterates_all_sets(self):
        tlb = SetAssociativeTLB(entries=4, associativity=2)
        for k in (0, 1, 2, 3):
            tlb.fill(k)
        assert sorted(tlb.resident()) == [0, 1, 2, 3]
