"""Tests for the fully-associative and set-associative TLB models."""

import pytest

from repro.paging import FIFOPolicy, LRUPolicy, ReplacementPolicy
from repro.tlb import TLB, SetAssociativeTLB


class TestTLBBasics:
    def test_miss_then_hit(self):
        tlb = TLB(entries=2)
        assert tlb.lookup(10) is None
        tlb.fill(10, value=7)
        assert tlb.lookup(10) == 7
        assert tlb.hits == 1 and tlb.misses == 1

    def test_capacity_and_eviction(self):
        tlb = TLB(entries=2)
        tlb.fill(1, 0)
        tlb.fill(2, 0)
        victim = tlb.fill(3, 0)
        assert victim == 1  # LRU default
        assert len(tlb) == 2
        assert 1 not in tlb

    def test_lru_ordering_respects_hits(self):
        tlb = TLB(entries=2)
        tlb.fill(1, 0)
        tlb.fill(2, 0)
        tlb.lookup(1)  # 2 is now LRU
        assert tlb.fill(3, 0) == 2

    def test_double_fill_raises(self):
        tlb = TLB(entries=2)
        tlb.fill(1, 0)
        with pytest.raises(ValueError, match="already resident"):
            tlb.fill(1, 0)

    def test_update_value(self):
        tlb = TLB(entries=2)
        tlb.fill(1, 5)
        tlb.update(1, 9)
        assert tlb.peek(1) == 9
        with pytest.raises(KeyError):
            tlb.update(2, 0)

    def test_value_bits_enforced(self):
        tlb = TLB(entries=2, value_bits=8)
        tlb.fill(1, 255)
        with pytest.raises(ValueError, match="w=8"):
            tlb.fill(2, 256)
        with pytest.raises(ValueError):
            tlb.update(1, -1)

    def test_invalidate(self):
        tlb = TLB(entries=2)
        tlb.fill(1, 0)
        tlb.invalidate(1)
        assert 1 not in tlb
        with pytest.raises(KeyError):
            tlb.invalidate(1)

    def test_peek_does_not_touch_stats(self):
        tlb = TLB(entries=2)
        tlb.fill(1, 3)
        assert tlb.peek(1) == 3
        assert tlb.peek(2) is None
        assert tlb.hits == 0 and tlb.misses == 0

    def test_miss_rate(self):
        tlb = TLB(entries=4)
        assert tlb.miss_rate == 0.0
        tlb.lookup(1)
        tlb.fill(1)
        tlb.lookup(1)
        assert tlb.miss_rate == 0.5

    def test_custom_policy(self):
        tlb = TLB(entries=2, policy=FIFOPolicy())
        tlb.fill(1, 0)
        tlb.fill(2, 0)
        tlb.lookup(1)  # FIFO ignores the hit
        assert tlb.fill(3, 0) == 1

    def test_reset_stats(self):
        tlb = TLB(entries=2)
        tlb.lookup(1)
        tlb.fill(1)
        tlb.reset_stats()
        assert tlb.hits == 0 and tlb.misses == 0 and tlb.fills == 0
        assert 1 in tlb


class TestSetAssociativeTLB:
    def test_divisibility_enforced(self):
        with pytest.raises(ValueError):
            SetAssociativeTLB(entries=10, associativity=4)

    def test_keys_partition_into_sets(self):
        tlb = SetAssociativeTLB(entries=8, associativity=2)  # 4 sets
        # keys 0, 4, 8 all map to set 0; capacity 2 per set
        tlb.fill(0)
        tlb.fill(4)
        tlb.fill(8)
        assert len(tlb) == 2
        assert 0 not in tlb  # evicted within set 0 despite global space

    def test_conflict_misses_exceed_fully_associative(self):
        """The motivating weakness of set-associativity: conflict misses."""
        full = TLB(entries=8)
        seta = SetAssociativeTLB(entries=8, associativity=2)
        trace = [0, 4, 8, 12] * 50  # all collide in set 0
        for hpn in trace:
            if full.lookup(hpn) is None:
                full.fill(hpn)
            if seta.lookup(hpn) is None:
                seta.fill(hpn)
        assert full.misses == 4  # compulsory only
        assert seta.misses > full.misses

    def test_aggregate_stats(self):
        tlb = SetAssociativeTLB(entries=4, associativity=2)
        tlb.lookup(0)
        tlb.fill(0, 9)
        assert tlb.lookup(0) == 9
        assert tlb.hits == 1 and tlb.misses == 1 and tlb.accesses == 2
        assert tlb.miss_rate == 0.5
        tlb.reset_stats()
        assert tlb.accesses == 0

    def test_update_invalidate_peek(self):
        tlb = SetAssociativeTLB(entries=4, associativity=2)
        tlb.fill(3, 1)
        tlb.update(3, 2)
        assert tlb.peek(3) == 2
        tlb.invalidate(3)
        assert tlb.peek(3) is None

    def test_resident_iterates_all_sets(self):
        tlb = SetAssociativeTLB(entries=4, associativity=2)
        for k in (0, 1, 2, 3):
            tlb.fill(k)
        assert sorted(tlb.resident()) == [0, 1, 2, 3]


#: every TLB flavour must expose the same counter/inspection surface —
#: MM code written against the fully-associative model runs over either.
TLB_FACTORIES = {
    "full": lambda: TLB(entries=8, value_bits=16),
    "set-associative": lambda: SetAssociativeTLB(
        entries=8, associativity=2, value_bits=16
    ),
}


class TestTLBSurfaceParity:
    """Regression net for the SetAssociativeTLB surface drift: ``fills``,
    ``value_bits`` and ``check_invariants()`` exist on every variant."""

    @pytest.mark.parametrize("flavour", sorted(TLB_FACTORIES))
    def test_counter_surface(self, flavour):
        tlb = TLB_FACTORIES[flavour]()
        assert tlb.value_bits == 16
        assert tlb.lookup(3) is None
        tlb.fill(3, 9)
        assert tlb.lookup(3) == 9
        assert (tlb.hits, tlb.misses, tlb.fills) == (1, 1, 1)
        assert tlb.accesses == 2 and tlb.miss_rate == 0.5
        tlb.check_invariants()
        tlb.reset_stats()
        assert (tlb.hits, tlb.misses, tlb.fills) == (0, 0, 0)
        assert 3 in tlb  # stats reset keeps residency

    @pytest.mark.parametrize("flavour", sorted(TLB_FACTORIES))
    def test_value_bits_enforced(self, flavour):
        tlb = TLB_FACTORIES[flavour]()
        tlb.fill(1, (1 << 16) - 1)
        with pytest.raises(ValueError, match="w=16"):
            tlb.fill(2, 1 << 16)

    def test_set_associative_invariants_catch_misplaced_key(self):
        tlb = SetAssociativeTLB(entries=4, associativity=2)  # 2 sets
        tlb.fill(0)
        tlb.check_invariants()
        # corrupt: key 4 indexes to set 0 but is planted in set 1
        tlb._sets[1].fill(4, 0)
        with pytest.raises(AssertionError, match="indexes to set"):
            tlb.check_invariants()


class _StampRecordingLRU(LRUPolicy):
    """LRU that records every insert stamp, to observe TLB.fill's clock."""

    def __init__(self):
        super().__init__()
        self.stamps = []

    def insert(self, key, time):
        self.stamps.append(time)
        super().insert(key, time)


class _OldestStampPolicy(ReplacementPolicy):
    """Evicts the smallest-stamp key, breaking stamp ties by *latest*
    insertion — a stamp-ordered policy that exposes ambiguous (tied)
    recency stamps as a wrong eviction order."""

    name = "oldest-stamp"

    def __init__(self):
        self._stamp = {}
        self._seq = {}
        self._n = 0

    def record_access(self, key, time):
        self._stamp[key] = time

    def insert(self, key, time):
        if key in self._stamp:
            raise KeyError(key)
        self._stamp[key] = time
        self._n += 1
        self._seq[key] = self._n

    def evict(self, incoming=None):
        if not self._stamp:
            raise LookupError("empty")
        victim = min(self._stamp, key=lambda k: (self._stamp[k], -self._seq[k]))
        del self._stamp[victim]
        del self._seq[victim]
        return victim

    def remove(self, key):
        del self._stamp[key]
        del self._seq[key]

    def __contains__(self, key):
        return key in self._stamp

    def __len__(self):
        return len(self._stamp)

    def resident(self):
        return iter(self._stamp)


class TestFillStampMonotonicity:
    """Regression for the ``max(0, clock - 1)`` stamping bug: an access
    installing several entries (prefetch, THP-style promotion) used to
    stamp them all with the same index, leaving stamp-ordered policies
    (BeladyOPT-style) to order the extras arbitrarily."""

    def test_multi_fill_stamps_strictly_increase(self):
        rec = _StampRecordingLRU()
        tlb = TLB(entries=8, policy=rec)
        assert tlb.lookup(0) is None  # one access...
        tlb.fill(0)
        tlb.fill(1)  # ...installing three entries
        tlb.fill(2)
        assert rec.stamps == sorted(set(rec.stamps)), (
            f"fill stamps not strictly monotone: {rec.stamps}"
        )

    def test_first_fill_still_attributed_to_its_access(self):
        rec = _StampRecordingLRU()
        tlb = TLB(entries=8, policy=rec)
        tlb.lookup(0)  # access index 0
        tlb.fill(0)
        tlb.lookup(1)  # access index 1
        tlb.fill(1)
        # the demand fill after each missing lookup keeps that access's index
        assert rec.stamps == [0, 1]

    def test_stamp_ordered_policy_evicts_in_fill_order(self):
        tlb = TLB(entries=3, policy=_OldestStampPolicy())
        tlb.lookup(0)
        tlb.fill(0)
        tlb.fill(1)
        tlb.fill(2)
        # with tied stamps the tie-break above would pick 2 (latest
        # insertion); strictly monotone stamps pin the intended order
        assert tlb.fill(3) == 0
