"""Tests for the log₂-bucketed histograms (repro.obs.hist).

The load-bearing property is merge associativity/commutativity on fuzzed
streams: the parallel snapshot reduction folds shard histograms in
whatever tree the runner produces, and every tree must agree.
"""

import random

import pytest

from repro.obs import LogHistogram
from repro.obs.hist import bucket_bounds, bucket_index, bucket_label


class TestBuckets:
    def test_bucket_index_boundaries(self):
        assert [bucket_index(v) for v in (0, 1, 2, 3, 4, 7, 8)] == [
            0, 1, 2, 2, 3, 3, 4
        ]

    def test_bucket_bounds_inverse(self):
        for value in (0, 1, 2, 5, 63, 64, 1 << 40):
            lo, hi = bucket_bounds(bucket_index(value))
            assert lo <= value <= hi

    def test_bucket_label(self):
        assert bucket_label(0) == "0"
        assert bucket_label(1) == "1"
        assert bucket_label(3) == "4-7"

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            LogHistogram().record(-1)


def _recorded(values):
    h = LogHistogram()
    h.record_many(values)
    return h


class TestRecording:
    def test_exact_aggregates(self):
        h = _recorded([0, 1, 5, 5, 200])
        assert h.n == 5 == len(h)
        assert h.total == 211
        assert (h.min, h.max) == (0, 200)
        assert h.mean == pytest.approx(211 / 5)

    def test_weighted_record(self):
        h = LogHistogram()
        h.record(6, count=10)
        assert h.n == 10 and h.total == 60
        with pytest.raises(ValueError, match="positive"):
            h.record(6, count=0)

    def test_percentile_within_bucket_and_clamped(self):
        h = _recorded([5] * 99 + [1000])
        assert h.percentile(0.0) == 7  # bucket 4-7 upper bound
        assert h.percentile(0.5) == 7  # bucket 4-7 upper bound
        assert h.percentile(1.0) == 1000  # clamped to exact max
        assert LogHistogram().percentile(0.5) is None
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            h.percentile(1.5)

    def test_rows_cumulative_fraction(self):
        rows = _recorded([1, 1, 4, 4, 4, 4, 64, 64]).rows()
        assert [r["bucket"] for r in rows] == ["1", "4-7", "64-127"]
        assert [r["count"] for r in rows] == [2, 4, 2]
        assert rows[-1]["cum_frac"] == 1.0


def _fuzz_stream(seed, n):
    rng = random.Random(seed)
    return [rng.randrange(0, 1 << rng.randrange(1, 20)) for _ in range(n)]


class TestMerge:
    @pytest.mark.parametrize("seed", range(5))
    def test_merge_is_associative_and_commutative(self, seed):
        a, b, c = (
            _recorded(_fuzz_stream(seed * 3 + i, 200 + 50 * i))
            for i in range(3)
        )
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert left == right
        assert a.merge(b) == b.merge(a)

    @pytest.mark.parametrize("seed", range(5))
    def test_merge_equals_combined_stream(self, seed):
        xs = _fuzz_stream(seed, 300)
        ys = _fuzz_stream(seed + 100, 150)
        assert _recorded(xs).merge(_recorded(ys)) == _recorded(xs + ys)

    def test_empty_is_the_identity(self):
        h = _recorded([3, 9, 81])
        assert LogHistogram().merge(h) == h == h.merge(LogHistogram())

    def test_merge_does_not_mutate_inputs(self):
        a, b = _recorded([1, 2]), _recorded([4, 8])
        a_state, b_state = a.as_dict(), b.as_dict()
        a.merge(b)
        assert a.as_dict() == a_state and b.as_dict() == b_state


class TestSerialization:
    def test_round_trip(self):
        h = _recorded(_fuzz_stream(7, 500))
        assert LogHistogram.from_dict(h.as_dict()) == h

    def test_empty_round_trip(self):
        assert LogHistogram.from_dict(LogHistogram().as_dict()) == LogHistogram()

    def test_as_dict_is_json_ready(self):
        import json

        payload = json.loads(json.dumps(_recorded([0, 7, 7]).as_dict()))
        assert payload["counts"] == {"0": 1, "3": 2}
        assert payload["n"] == 3
