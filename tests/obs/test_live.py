"""Tests for the live telemetry bus (repro.obs.live).

The spool contract: every record is one atomic JSONL line carrying
``kind``/``worker``/``seq``/``wall``; readers tolerate torn or foreign
lines; :func:`aggregate` reduces any record mix into the ``repro top``
summary; and the heartbeat probe streams progress without perturbing the
simulation or leaving the vectorized fast paths.
"""

import json

import pytest

from repro.mmu.base import MemoryManagementAlgorithm
from repro.obs import (
    HeartbeatConfig,
    HeartbeatProbe,
    StallWatcher,
    TelemetryBus,
    aggregate,
    read_spool,
    render_top,
)
from tests.check.goldens import build_mm, build_trace


class TestTelemetryBus:
    def test_emit_appends_one_json_line(self, tmp_path):
        spool = tmp_path / "t.jsonl"
        with TelemetryBus(spool, worker="w0") as bus:
            rec = bus.emit("phase", task="3", label="measure", t=100)
        lines = spool.read_text().splitlines()
        assert len(lines) == 1
        parsed = json.loads(lines[0])
        assert parsed == rec
        assert parsed["kind"] == "phase"
        assert parsed["worker"] == "w0"
        assert parsed["seq"] == 1
        assert isinstance(parsed["wall"], float)

    def test_seq_increments_per_bus(self, tmp_path):
        spool = tmp_path / "t.jsonl"
        with TelemetryBus(spool, worker="a") as bus:
            assert [bus.emit("phase")["seq"] for _ in range(3)] == [1, 2, 3]

    def test_worker_defaults_to_pid(self, tmp_path):
        import os

        bus = TelemetryBus(tmp_path / "t.jsonl")
        assert bus.worker == str(os.getpid())

    def test_two_buses_share_one_spool(self, tmp_path):
        spool = tmp_path / "t.jsonl"
        with TelemetryBus(spool, worker="a") as a, TelemetryBus(
            spool, worker="b"
        ) as b:
            a.emit("heartbeat", task="1", done=10)
            b.emit("heartbeat", task="2", done=20)
            a.emit("task_end", task="1")
        records = read_spool(spool)
        assert [r["worker"] for r in records] == ["a", "b", "a"]

    def test_lazy_open_creates_parent_dirs(self, tmp_path):
        spool = tmp_path / "deep" / "nested" / "t.jsonl"
        bus = TelemetryBus(spool, worker="x")
        assert not spool.parent.exists()  # nothing until the first emit
        bus.emit("phase")
        bus.close()
        assert spool.exists()


class TestReadSpool:
    def test_missing_file_is_empty(self, tmp_path):
        assert read_spool(tmp_path / "absent.jsonl") == []

    def test_torn_and_foreign_lines_are_skipped(self, tmp_path):
        spool = tmp_path / "t.jsonl"
        good = {"kind": "heartbeat", "worker": "a", "seq": 1, "wall": 1.0}
        spool.write_text(
            json.dumps(good) + "\n"
            + '{"kind": "heartbeat", "tru'  # torn tail mid-write
            + "\n\n"
            + '"a bare json string"\n'  # valid json, not a record
            + "[1, 2, 3]\n"  # ditto
            + '{"no_kind": true}\n'  # dict without a kind
        )
        assert read_spool(spool) == [good]


class TestRotation:
    def test_spool_rotates_at_max_bytes(self, tmp_path):
        spool = tmp_path / "t.jsonl"
        with TelemetryBus(spool, worker="w", max_bytes=256) as bus:
            for i in range(40):
                bus.emit("heartbeat", task="0", done=i)
        rotated = tmp_path / "t.jsonl.1"
        assert rotated.exists()
        assert spool.stat().st_size <= 256
        assert rotated.stat().st_size <= 256

    def test_reader_stitches_generations_in_order(self, tmp_path):
        spool = tmp_path / "t.jsonl"
        with TelemetryBus(spool, worker="w", max_bytes=512) as bus:
            emitted = [bus.emit("heartbeat", task="0", done=i)["seq"]
                       for i in range(40)]
        records = read_spool(spool)
        # rotation keeps only the newest two generations: whatever
        # survives must be a contiguous, ordered tail of the stream
        seqs = [r["seq"] for r in records]
        assert seqs == sorted(seqs)
        assert seqs == emitted[-len(seqs):]
        assert seqs[-1] == 40

    def test_duplicate_records_across_generations_dedupe(self, tmp_path):
        spool = tmp_path / "t.jsonl"
        rec = {"kind": "heartbeat", "worker": "w", "seq": 1, "wall": 1.0}
        (tmp_path / "t.jsonl.1").write_text(json.dumps(rec) + "\n")
        spool.write_text(json.dumps(rec) + "\n")  # rotation raced the read
        assert read_spool(spool) == [rec]

    def test_second_writer_follows_a_rotation(self, tmp_path):
        spool = tmp_path / "t.jsonl"
        with TelemetryBus(spool, worker="a", max_bytes=200) as a, \
                TelemetryBus(spool, worker="b", max_bytes=200) as b:
            a.emit("heartbeat", task="0", done=0)
            b.emit("heartbeat", task="1", done=0)
            for i in range(20):  # force rotations under writer a
                a.emit("heartbeat", task="0", done=i)
            b.emit("heartbeat", task="1", done=99)  # must land in the live file
        live = [r for r in read_spool(spool) if r["worker"] == "b"]
        assert live and live[-1]["done"] == 99

    def test_unbounded_bus_never_rotates(self, tmp_path):
        spool = tmp_path / "t.jsonl"
        with TelemetryBus(spool, worker="w") as bus:
            for i in range(40):
                bus.emit("heartbeat", task="0", done=i)
        assert not (tmp_path / "t.jsonl.1").exists()
        assert len(read_spool(spool)) == 40

    def test_max_bytes_validation(self, tmp_path):
        with pytest.raises(ValueError):
            TelemetryBus(tmp_path / "t.jsonl", max_bytes=0)

    def test_heartbeat_config_carries_max_bytes(self, tmp_path):
        cfg = HeartbeatConfig(spool=str(tmp_path / "t.jsonl"), max_bytes=1024)
        assert cfg.bus("w").max_bytes == 1024


def _hb(task, done, *, worker="w", seq=1, wall=0.0, total=100, acc_s=1000.0,
        counters=None):
    return {"kind": "heartbeat", "worker": worker, "seq": seq, "wall": wall,
            "task": task, "done": done, "total": total, "acc_s": acc_s,
            "counters": counters or {}}


class TestAggregate:
    def test_latest_heartbeat_wins(self):
        summary = aggregate([
            _hb("0", 10, wall=1.0),
            _hb("0", 50, seq=2, wall=2.0, acc_s=2000.0),
        ])
        (task,) = summary["tasks"]
        assert task["done"] == 50
        assert task["acc_s"] == 2000.0
        assert task["state"] == "running"
        assert summary["workers"]["w"]["heartbeats"] == 2
        assert summary["totals"]["elapsed_s"] == 1.0

    def test_task_end_states(self):
        records = [
            _hb("0", 100, wall=1.0),
            {"kind": "task_end", "worker": "w", "seq": 2, "wall": 2.0,
             "task": "0", "accesses": 100, "acc_s": 500.0,
             "counters": {"ios": 7}},
            {"kind": "task_start", "worker": "w", "seq": 3, "wall": 3.0,
             "task": "1", "total": 200},
            {"kind": "task_end", "worker": "w", "seq": 4, "wall": 4.0,
             "task": "1", "error": "RuntimeError: boom"},
        ]
        by = {t["task"]: t for t in aggregate(records)["tasks"]}
        assert by["0"]["state"] == "done"
        assert by["0"]["done"] == 100
        assert by["0"]["counters"] == {"ios": 7}
        assert by["1"]["state"] == "failed"

    def test_stall_flags_task_until_it_speaks_again(self):
        stall = {"kind": "task_stall", "worker": "parent", "seq": 1,
                 "wall": 5.0, "task": "0", "stalled_worker": "w",
                 "silent_s": 9.0}
        stalled = aggregate([_hb("0", 10, wall=1.0), stall])
        assert stalled["tasks"][0]["state"] == "stalled"
        assert stalled["stalls"] == [stall]
        # a later heartbeat clears the stall state
        recovered = aggregate(
            [_hb("0", 10, wall=1.0), stall, _hb("0", 20, seq=2, wall=9.0)]
        )
        assert recovered["tasks"][0]["state"] == "running"

    def test_retries_are_collected(self):
        retry = {"kind": "task_retry", "worker": "parent", "seq": 1,
                 "wall": 1.0, "task": "2", "attempt": 1, "error": "boom"}
        assert aggregate([retry])["retries"] == [retry]

    def test_numeric_task_ids_sort_numerically(self):
        records = [_hb(str(i), 1, wall=float(i)) for i in (10, 2, 9, 1)]
        summary = aggregate(records)
        assert [t["task"] for t in summary["tasks"]] == ["1", "2", "9", "10"]

    def test_totals_counters_eta_and_rate(self):
        summary = aggregate([
            _hb("0", 50, wall=1.0, total=100, acc_s=100.0,
                counters={"accesses": 50, "ios": 5}),
            _hb("1", 25, worker="v", wall=1.5, total=100, acc_s=100.0,
                counters={"accesses": 25, "ios": 2}),
        ])
        totals = summary["totals"]
        assert totals["counters"] == {"accesses": 75, "ios": 7}
        assert totals["acc_s"] == 200.0
        assert totals["remaining"] == 125
        assert totals["eta_s"] == pytest.approx(125 / 200.0)

    def test_empty_spool(self):
        summary = aggregate([])
        assert summary["tasks"] == []
        assert summary["totals"]["eta_s"] is None


class TestRenderTop:
    def test_empty_frame(self):
        assert "spool is empty" in render_top(aggregate([]))

    def test_frame_shows_progress_and_cost(self):
        summary = aggregate([
            _hb("0", 50, wall=1.0, total=100,
                counters={"accesses": 50, "ios": 10, "tlb_misses": 100}),
            {"kind": "task_end", "worker": "v", "seq": 1, "wall": 2.0,
             "task": "1", "accesses": 100, "acc_s": 0.0, "counters": {}},
        ])
        text = render_top(summary, epsilon=0.5)
        assert "1 running, 1 done" in text
        assert "50.0%" in text
        # cost@eps: ios + eps * (tlb_misses + decoding_misses)
        assert "cost@eps=0.5 60.0" in text

    def test_frame_shows_stalls_and_retries(self):
        summary = aggregate([
            _hb("0", 10, wall=1.0),
            {"kind": "task_stall", "worker": "parent", "seq": 1, "wall": 9.0,
             "task": "0", "stalled_worker": "w", "silent_s": 8.0},
            {"kind": "task_retry", "worker": "parent", "seq": 2, "wall": 9.5,
             "task": "0", "attempt": 1, "error": "boom"},
        ])
        text = render_top(summary)
        assert "STALL task=0 worker=w" in text
        assert "RETRY task=0 attempt=1" in text


class TestHeartbeatProbe:
    def _run(self, tmp_path, interval=500, warmup=0):
        trace = build_trace("zipf")
        spool = tmp_path / "hb.jsonl"
        mm = build_mm("thp")
        with TelemetryBus(spool, worker="w0") as bus:
            mm.probe = HeartbeatProbe(
                bus, interval=interval, task="cell", total=len(trace)
            )
            plain = build_mm("thp")
            expected = plain.run(trace)
            ledger = mm.run(trace)
        assert ledger.snapshot() == expected.snapshot()  # never perturbs
        return trace, mm.probe, read_spool(spool)

    def test_heartbeats_cover_the_full_replay(self, tmp_path):
        trace, probe, records = self._run(tmp_path, interval=500)
        beats = [r for r in records if r["kind"] == "heartbeat"]
        # one flush per interval segment: ceil(n / interval)
        assert len(beats) == -(-len(trace) // 500)
        assert probe.done == len(trace)
        assert beats[-1]["done"] == len(trace)
        assert [b["done"] for b in beats] == sorted(b["done"] for b in beats)

    def test_counters_track_the_ledger_deltas(self, tmp_path):
        trace, probe, records = self._run(tmp_path, interval=700)
        mm = build_mm("thp")
        ledger = mm.run(trace)
        assert probe.counters["accesses"] == ledger.accesses
        assert probe.counters["ios"] == ledger.ios
        assert probe.counters["tlb_misses"] == ledger.tlb_misses
        last = [r for r in records if r["kind"] == "heartbeat"][-1]
        assert last["counters"] == probe.counters

    def test_fast_path_stays_enabled(self, tmp_path, monkeypatch):
        def boom(self, trace):  # pragma: no cover - failure path
            raise AssertionError("heartbeat forced the per-access replay")

        monkeypatch.setattr(MemoryManagementAlgorithm, "_run_probed", boom)
        monkeypatch.setattr(MemoryManagementAlgorithm, "_run_batched", boom)
        self._run(tmp_path, interval=300)

    def test_on_phase_records(self, tmp_path):
        spool = tmp_path / "p.jsonl"
        with TelemetryBus(spool, worker="w") as bus:
            probe = HeartbeatProbe(bus, task="7")
            probe.on_phase(1000, "measure")
        (rec,) = read_spool(spool)
        assert rec["kind"] == "phase"
        assert rec["task"] == "7"
        assert rec["label"] == "measure"
        assert rec["t"] == 1000

    def test_interval_validation(self, tmp_path):
        bus = TelemetryBus(tmp_path / "t.jsonl")
        with pytest.raises(ValueError):
            HeartbeatProbe(bus, interval=0)


class TestHeartbeatConfig:
    def test_bus_builds_on_the_spool(self, tmp_path):
        cfg = HeartbeatConfig(spool=str(tmp_path / "s.jsonl"), interval=128)
        with cfg.bus(worker="w9") as bus:
            bus.emit("phase")
        (rec,) = read_spool(cfg.spool)
        assert rec["worker"] == "w9"

    def test_is_picklable(self, tmp_path):
        import pickle

        cfg = HeartbeatConfig(spool=str(tmp_path / "s.jsonl"))
        assert pickle.loads(pickle.dumps(cfg)) == cfg


class TestStallWatcher:
    def _spool_with_heartbeat(self, tmp_path, wall):
        spool = tmp_path / "s.jsonl"
        spool.write_text(
            json.dumps(_hb("0", 10, wall=wall)) + "\n"
        )
        return spool

    def test_silent_worker_is_reported_once_per_episode(self, tmp_path):
        spool = self._spool_with_heartbeat(tmp_path, wall=100.0)
        watcher = StallWatcher(
            spool, TelemetryBus(spool, worker="parent"), grace_s=5.0
        )
        assert watcher.check(now=104.0) == []  # within grace
        (stall,) = watcher.check(now=110.0)
        assert stall["kind"] == "task_stall"
        assert stall["stalled_worker"] == "w"
        assert stall["silent_s"] == pytest.approx(10.0)
        # the same episode is never re-reported ...
        assert watcher.check(now=120.0) == []
        watcher.bus.close()
        # ... and the stall record itself is now on the spool
        assert [r["kind"] for r in read_spool(spool)][-1] == "task_stall"

    def test_speaking_again_rearms_the_watcher(self, tmp_path):
        spool = self._spool_with_heartbeat(tmp_path, wall=100.0)
        bus = TelemetryBus(spool, worker="parent")
        watcher = StallWatcher(spool, bus, grace_s=5.0)
        assert len(watcher.check(now=110.0)) == 1
        with spool.open("a") as fh:  # worker recovers (controlled wall)
            fh.write(json.dumps(_hb("0", 20, seq=2, wall=111.0)) + "\n")
        # recovery re-arms: the live check clears the reported episode, so
        # a *new* silence after the fresh heartbeat is a new episode
        assert watcher.check(now=112.0) == []
        assert len(watcher.check(now=200.0)) == 1
        bus.close()

    def test_stall_allowance_scales_with_observed_period(self, tmp_path):
        spool = tmp_path / "s.jsonl"
        # two heartbeats 30s apart: allowed silence is 4x30 >> grace
        spool.write_text(
            json.dumps(_hb("0", 10, wall=100.0))
            + "\n"
            + json.dumps(_hb("0", 20, seq=2, wall=130.0))
            + "\n"
        )
        watcher = StallWatcher(
            spool, TelemetryBus(spool, worker="parent"),
            stall_factor=4.0, grace_s=5.0,
        )
        assert watcher.check(now=200.0) == []  # 70s silent, 120s allowed
        assert len(watcher.check(now=260.0)) == 1
        watcher.bus.close()

    def test_finished_workers_are_not_flagged(self, tmp_path):
        spool = tmp_path / "s.jsonl"
        spool.write_text(
            json.dumps(_hb("0", 10, wall=100.0))
            + "\n"
            + json.dumps({"kind": "task_end", "worker": "w", "seq": 2,
                          "wall": 101.0, "task": "0"})
            + "\n"
        )
        watcher = StallWatcher(spool, TelemetryBus(spool, worker="parent"))
        assert watcher.check(now=1000.0) == []
        watcher.bus.close()

    def test_thread_lifecycle(self, tmp_path):
        spool = tmp_path / "s.jsonl"
        bus = TelemetryBus(spool, worker="parent")
        with StallWatcher(spool, bus, poll_s=0.01) as watcher:
            assert watcher._thread.is_alive()
        assert watcher._thread is None
        bus.close()
