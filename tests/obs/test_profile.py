"""Tests for wall-clock profiling helpers."""

import pytest

from repro.obs import PROFILE, ProfileRegistry, Timer, TimerStats, accesses_per_second, timed


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            sum(range(10_000))
        assert t.elapsed > 0

    def test_accumulates_across_uses(self):
        t = Timer()
        with t:
            pass
        first = t.elapsed
        with t:
            pass
        assert t.elapsed > first


class TestTimed:
    def test_records_into_registry(self):
        reg = ProfileRegistry()

        @timed(name="work", registry=reg)
        def work(x):
            return x * 2

        assert work(21) == 42
        assert work(1) == 2
        stats = reg.stats["work"]
        assert stats.calls == 2
        assert stats.total_s >= stats.max_s >= stats.min_s > 0
        assert stats.mean_s == pytest.approx(stats.total_s / 2)

    def test_bare_decorator_uses_default_registry(self):
        @timed
        def _probe_me():
            return 1

        before = len(PROFILE.stats)
        _probe_me()
        assert _probe_me.profile_name in PROFILE.stats
        assert len(PROFILE.stats) >= before
        del PROFILE.stats[_probe_me.profile_name]

    def test_records_even_when_raising(self):
        reg = ProfileRegistry()

        @timed(name="boom", registry=reg)
        def boom():
            raise RuntimeError

        with pytest.raises(RuntimeError):
            boom()
        assert reg.stats["boom"].calls == 1

    def test_rows_sorted_hottest_first(self):
        reg = ProfileRegistry()
        reg.record("slow", 2.0)
        reg.record("fast", 0.5)
        assert [r["name"] for r in reg.rows()] == ["slow", "fast"]
        reg.reset()
        assert reg.rows() == []


class TestThroughput:
    def test_basic(self):
        assert accesses_per_second(1000, 0.5) == 2000.0

    def test_zero_guards(self):
        assert accesses_per_second(0, 1.0) == 0.0
        assert accesses_per_second(1000, 0.0) == 0.0

    def test_empty_stats_row(self):
        assert TimerStats("x").as_row()["min_s"] == 0.0
