"""Tests for the probe protocol and the trace recorder."""

import json

import pytest

from repro.mmu import BasePageMM, DecoupledMM, PhysicalHugePageMM
from repro.obs import (
    EVENT_KINDS,
    NULL_PROBE,
    Event,
    MultiProbe,
    NullProbe,
    TraceRecorder,
)
from repro.sim import simulate
from repro.workloads import ZipfWorkload


def _trace(n=6000, pages=2048, seed=0):
    return ZipfWorkload(pages, s=0.9).generate(n, seed=seed)


class TestNullProbe:
    def test_disabled(self):
        assert NullProbe.enabled is False
        assert NULL_PROBE.enabled is False

    def test_default_probe_is_null(self):
        assert BasePageMM(8, 64).probe is NULL_PROBE

    def test_ledger_parity_with_and_without_probe(self):
        """The observed replay must be bit-identical to the plain one."""
        trace = _trace()
        for make in (
            lambda: PhysicalHugePageMM(32, 1024, huge_page_size=8),
            lambda: BasePageMM(32, 1024),
            lambda: DecoupledMM(32, 1024, seed=0),
        ):
            plain, probed = make(), make()
            l_plain = simulate(plain, trace, warmup=2000)
            l_probed = simulate(probed, trace, warmup=2000, probe=TraceRecorder())
            assert l_plain.as_dict() == l_probed.as_dict()

    def test_plain_simulate_leaves_probe_untouched(self):
        mm = BasePageMM(8, 64)
        simulate(mm, _trace(200, pages=128))
        assert mm.probe is NULL_PROBE


class TestTraceRecorder:
    def test_event_counts_match_ledger(self):
        trace = _trace()
        mm = PhysicalHugePageMM(32, 1024, huge_page_size=8)
        rec = TraceRecorder()
        ledger = simulate(mm, trace, probe=rec)  # no warmup: one phase
        assert rec.counts["access"] == ledger.accesses
        assert rec.counts["tlb_miss"] == ledger.tlb_misses
        io_pages = sum(e.pages for e in rec.events() if e.kind == "io")
        assert io_pages == ledger.ios
        assert rec.counts["phase"] == 1  # "measure" only

    def test_phase_events_mark_warmup_boundary(self):
        trace = _trace(2000)
        rec = TraceRecorder()
        simulate(BasePageMM(16, 256), trace, warmup=500, probe=rec)
        phases = [e for e in rec.events() if e.kind == "phase"]
        assert [(e.label, e.t) for e in phases] == [("warmup", 0), ("measure", 500)]

    def test_eviction_events_observed(self):
        # capacity 4 over 64 hot pages: evictions are guaranteed
        rec = TraceRecorder()
        simulate(BasePageMM(4, 4), _trace(2000, pages=64), probe=rec)
        assert rec.counts["eviction"] > 0

    def test_ring_overflow_keeps_tail_and_exact_counts(self):
        rec = TraceRecorder(capacity=64)
        trace = _trace(500, pages=128)
        simulate(BasePageMM(16, 64), trace, probe=rec)
        assert len(rec.events()) == 64
        assert rec.dropped == rec.total_events - 64
        assert rec.counts["access"] == 500  # exact despite the wrap
        # the retained events are the most recent ones
        assert rec.events()[-1].t == 499

    def test_kind_whitelist(self):
        rec = TraceRecorder(kinds=["io", "phase"])
        simulate(BasePageMM(16, 64), _trace(500, pages=128), probe=rec)
        assert {e.kind for e in rec.events()} <= {"io", "phase"}
        assert rec.counts["access"] == 0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            TraceRecorder(kinds=["access", "nope"])

    def test_jsonl_round_trip(self, tmp_path):
        rec = TraceRecorder()
        simulate(BasePageMM(16, 64), _trace(300, pages=128), probe=rec)
        path = rec.to_jsonl(tmp_path / "events.jsonl")
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(rows) == len(rec.events())
        for row, event in zip(rows, rec.events()):
            assert row == event.as_dict()
            assert row["kind"] in EVENT_KINDS

    def test_to_jsonl_creates_parent_directories(self, tmp_path):
        rec = TraceRecorder()
        rec.on_access(0, 1)
        path = rec.to_jsonl(tmp_path / "runs" / "2026" / "events.jsonl")
        assert path.is_file()

    def test_clear(self):
        rec = TraceRecorder()
        rec.on_access(0, 1)
        rec.clear()
        assert rec.events() == [] and rec.total_events == 0


class TestMultiProbe:
    def test_fans_out_to_all_probes(self):
        a, b = TraceRecorder(), TraceRecorder()
        multi = MultiProbe([a, b])
        multi.on_access(3, 7)
        multi.on_phase(0, "measure")
        assert a.events() == b.events() == [
            Event("access", 3, vpn=7),
            Event("phase", 0, label="measure"),
        ]

    def test_skips_disabled_probes(self):
        assert MultiProbe([NULL_PROBE, TraceRecorder()]).probes[0].enabled
        assert len(MultiProbe([NULL_PROBE]).probes) == 0
