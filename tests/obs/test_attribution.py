"""Miss-attribution pins: conservation, non-perturbation, engine contract.

The attribution layer's whole value is that it is *exact*: on any stream,
every TLB/page miss gets exactly one cause, so the per-cause counts sum
bit-identically to the ledger totals, and attaching the probe never
changes a single simulated counter. These tests pin that over every
registry algorithm × several stream shapes, on both engines, plus the
array-engine contract: provenance replays vectorized for the
base-page/physical-huge fold and silently falls back to the object
replay everywhere else.
"""

import numpy as np
import pytest

from repro.bench.hotloop import key_stream
from repro.mmu import array_engine
from repro.mmu.base import MemoryManagementAlgorithm
from repro.mmu.registry import MM_NAMES, make_mm
from repro.obs import (
    ATTRIB_PREFIX,
    CAUSES,
    INTERF_PREFIX,
    AttributionProbe,
    ObsSnapshot,
)

TLB_ENTRIES = 64
RAM_PAGES = 1024
SEED = 0

#: stream shapes: skewed reuse (evictions + refaults), near-uniform
#: (heavy capacity churn), and a cyclic scan (worst case for LRU).
STREAMS = {
    "skewed": lambda: key_stream(4000, 1 << 12, 1 << 8, 90, seed=SEED),
    "uniform": lambda: key_stream(4000, 1 << 12, 1 << 8, 10, seed=SEED),
    "scan": lambda: [i % (1 << 10) for i in range(4000)],
}

#: algorithms whose array handler replays provenance vectorized; the rest
#: must silently decline to the object engine under a provenance probe.
ARRAY_PROVENANCE_MMS = ("base-page", "physical-huge")


def _observed(algorithm, engine="object"):
    mm = make_mm(algorithm, TLB_ENTRIES, RAM_PAGES, seed=SEED, engine=engine)
    return mm, AttributionProbe().observe(mm)


@pytest.mark.parametrize("algorithm", MM_NAMES)
@pytest.mark.parametrize("stream", sorted(STREAMS))
class TestConservation:
    def test_every_tlb_miss_has_exactly_one_cause(self, algorithm, stream):
        mm, probe = _observed(algorithm)
        mm.run(STREAMS[stream]())
        assert probe.family_total("tlb") == mm.ledger.tlb_misses
        assert sum(probe.cause_totals("tlb").values()) == mm.ledger.tlb_misses

    def test_ram_family_matches_structure_misses(self, algorithm, stream):
        mm, probe = _observed(algorithm)
        mm.run(STREAMS[stream]())
        sites = dict(
            (family, struct)
            for family, struct, _page_of in (
                mm.attribution_sites()
            )
        )
        if "ram" not in sites:
            pytest.skip(f"{algorithm} exposes no ram site")
        assert probe.family_total("ram") == sites["ram"].misses

    def test_probe_never_perturbs_the_ledger(self, algorithm, stream):
        trace = STREAMS[stream]()
        plain = make_mm(algorithm, TLB_ENTRIES, RAM_PAGES, seed=SEED)
        plain.run(trace)
        mm, _probe = _observed(algorithm)
        mm.run(trace)
        assert mm.ledger.as_dict() == plain.ledger.as_dict()


@pytest.mark.parametrize("algorithm", MM_NAMES)
class TestEngineContract:
    def test_engines_classify_bit_identically(self, algorithm):
        trace = np.asarray(STREAMS["skewed"](), dtype=np.int64)
        obj, p_obj = _observed(algorithm, engine="object")
        obj.run(trace)
        arr, p_arr = _observed(algorithm, engine="array")
        arr.run(trace)
        assert obj.ledger.as_dict() == arr.ledger.as_dict()
        assert p_obj.counts == p_arr.counts
        assert p_obj.matrix == p_arr.matrix

    def test_array_engine_provenance_gate(self, algorithm):
        """Hugepage-family handlers replay provenance in the array engine;
        every other handler declines (silent object fallback)."""
        trace = np.asarray(STREAMS["skewed"](), dtype=np.int64)
        mm, _probe = _observed(algorithm, engine="array")
        supported = array_engine.supports(mm)
        ledger = array_engine.try_run(mm, trace)
        if algorithm in ARRAY_PROVENANCE_MMS:
            assert supported and ledger is not None
        else:
            assert ledger is None  # falls back; run() covers it silently


class TestCauses:
    def test_shootdown_classifies_refault_misses(self):
        mm, probe = _observed("base-page")
        mm.run(STREAMS["skewed"]())
        dropped = mm.shootdown(0, 1 << 8)
        assert dropped > 0
        mm.run(STREAMS["skewed"]())
        totals = probe.cause_totals("tlb")
        assert totals["shootdown"] > 0
        assert probe.family_total("tlb") == mm.ledger.tlb_misses

    def test_thp_promotion_flush_classified(self):
        mm, probe = _observed("thp")
        mm.run(STREAMS["skewed"]())
        assert probe.cause_totals("tlb")["promotion_flush"] > 0
        assert probe.family_total("tlb") == mm.ledger.tlb_misses

    def test_reset_zeroes_counts_but_keeps_ghost_tags(self):
        mm, probe = _observed("base-page")
        trace = STREAMS["uniform"]()
        mm.run(trace)
        assert probe.counts
        probe.reset()
        assert probe.counts == {} and probe.matrix == {}
        mm.run(trace)  # warm caches + surviving tags: refaults classify
        totals = probe.cause_totals("tlb")
        assert totals["capacity_self"] > 0
        assert probe.family_total("tlb") > 0

    def test_on_phase_measure_resets(self):
        probe = AttributionProbe()
        probe.counts[(0, "tlb", "cold")] = 3
        probe.on_phase(0, "warmup")
        assert probe.counts
        probe.on_phase(0, "measure")
        assert probe.counts == {}

    def test_single_tenant_attributes_to_asid_zero(self):
        mm, probe = _observed("base-page")
        mm.run(STREAMS["skewed"]())
        assert {asid for asid, _f, _c in probe.counts} == {0}


class TestApi:
    def test_observe_rejects_siteless_algorithm(self):
        class Bare(MemoryManagementAlgorithm):
            def access(self, vpn):  # pragma: no cover - never driven
                pass

        with pytest.raises(ValueError, match="no .*attribution sites"):
            AttributionProbe().observe(Bare())

    def test_observe_unwraps_validating_mm(self):
        from repro.check import ValidatingMM

        inner = make_mm("base-page", TLB_ENTRIES, RAM_PAGES, seed=SEED)
        mm = ValidatingMM(inner)
        probe = AttributionProbe().observe(mm)
        assert inner._provenance is probe and mm._provenance is probe
        mm.run(STREAMS["skewed"]())
        assert probe.family_total("tlb") == mm.ledger.tlb_misses
        probe.detach(mm)
        assert inner._provenance is None and mm._provenance is None
        assert inner.tlb._ghost is None

    def test_probe_is_batch_safe(self):
        probe = AttributionProbe()
        assert probe.batch_safe and probe.batch_interval is None

    def test_attrib_counters_fold_into_snapshots_associatively(self):
        mm, probe = _observed("base-page")
        mm.run(STREAMS["skewed"]())
        snap = ObsSnapshot.from_run(mm.ledger, probe=probe)
        attrib_keys = [
            k for k in snap.counters if k.startswith(ATTRIB_PREFIX)
        ]
        assert attrib_keys
        assert all(
            k.split(":")[2] in CAUSES for k in attrib_keys
        )
        assert sum(
            v for k, v in snap.counters.items()
            if k.startswith(f"{ATTRIB_PREFIX}tlb:")
        ) == mm.ledger.tlb_misses
        merged = snap.merge(snap)
        for k in attrib_keys:
            assert merged.counters[k] == 2 * snap.counters[k]

    def test_tenant_counters_partition_the_totals(self):
        mm, probe = _observed("base-page")
        probe.asid_stride = 1 << 9  # pretend two tenants by key striding
        mm.run([i % (1 << 10) for i in range(3000)])
        per_tenant = [probe.tenant_counters(a) for a in (0, 1)]
        total: dict = {}
        for counters in per_tenant:
            for k, v in counters.items():
                if k.startswith(INTERF_PREFIX):
                    continue
                total[k] = total.get(k, 0) + v
        assert total == {
            k: v for k, v in probe.attrib_counters().items()
            if k.startswith(ATTRIB_PREFIX)
        }
