"""Tests for the batch-safe sampling probe (repro.obs.sampling).

Three contracts, in rising order of importance:

* the scalar (per-access) and vectorized (on_batch) code paths collect
  bit-identical state, so detail mode changes depth, never the numbers;
* the scale-up estimators are unbiased against the exact counters of the
  committed golden streams (``tests/data/golden``);
* a batch-safe probe leaves the ``mmu`` fast paths enabled — attaching a
  default ``SamplingProbe`` must not fall back to the per-access replay.
"""

import numpy as np
import pytest

from repro.check import load_golden
from repro.mmu import MemoryManagementAlgorithm, PhysicalHugePageMM
from repro.obs import SamplingProbe
from repro.obs.sampling import _splitmix64_many, splitmix64
from tests.check.goldens import golden_cases

GOLDEN_VPNS = {}
for _algorithm, _workload, _path in golden_cases():
    if _algorithm == "base-page":  # one algorithm: the vpn column is shared
        _, rows = load_golden(_path)
        GOLDEN_VPNS[_workload] = [vpn for _t, vpn, *_rest in rows]


class TestSplitmix:
    def test_vectorized_matches_scalar(self):
        xs = np.random.default_rng(0).integers(
            0, 1 << 63, 4096, dtype=np.uint64
        )
        many = _splitmix64_many(xs)
        assert [splitmix64(int(x)) for x in xs[:256].tolist()] == many[
            :256
        ].tolist()

    def test_threshold_covers_rate_one(self):
        assert SamplingProbe(1.0)._threshold == (1 << 64) - 1


class TestScalarBatchParity:
    """Per-access replay and one on_batch flush agree bit-for-bit."""

    @pytest.mark.parametrize("workload", sorted(GOLDEN_VPNS))
    @pytest.mark.parametrize("t0", [0, 7])
    def test_identical_state(self, workload, t0):
        vpns = GOLDEN_VPNS[workload]
        scalar = SamplingProbe(1 / 16, seed=3)
        for i, vpn in enumerate(vpns):
            scalar.on_access(t0 + i, vpn)

        batched = SamplingProbe(1 / 16, seed=3)

        class _Ledger:  # only snapshot() is consulted by on_batch
            def snapshot(self):
                return (len(vpns), 0, 0, 0, 0, 0)

        batched.on_batch(t0, vpns, _Ledger(), (0, 0, 0, 0, 0, 0))

        assert scalar.sampled_accesses == batched.sampled_accesses
        assert scalar.tracked_accesses == batched.tracked_accesses
        assert scalar._last_seen == batched._last_seen
        assert scalar.hists == batched.hists


class TestUnbiasedness:
    """Scale-ups vs the exact counts of the golden streams."""

    @pytest.mark.parametrize("workload", sorted(GOLDEN_VPNS))
    def test_stride_estimator_is_exact_up_to_one_stride(self, workload):
        vpns = GOLDEN_VPNS[workload]
        probe = SamplingProbe(1 / 16, seed=0)
        for i, vpn in enumerate(vpns):
            probe.on_access(i, vpn)
        estimate = probe.estimates()["accesses_from_stride"]
        assert abs(estimate - len(vpns)) < probe.stride

    @pytest.mark.parametrize("workload", sorted(GOLDEN_VPNS))
    def test_hash_estimators_within_sampling_error(self, workload):
        vpns = GOLDEN_VPNS[workload]
        probe = SamplingProbe(1 / 8, seed=0)
        for i, vpn in enumerate(vpns):
            probe.on_access(i, vpn)
        est = probe.estimates()

        # each access is tracked with probability ~rate, so the estimator
        # error is ~sqrt(tracked)/rate; allow 5 sigma to keep this a fixed
        # (seeded, non-flaky) assertion rather than a statistical one
        tolerance = 5 * np.sqrt(probe.tracked_accesses) / probe.rate
        assert abs(est["accesses_from_hash"] - len(vpns)) < tolerance

        distinct = len(set(vpns))
        tolerance = 5 * np.sqrt(len(probe._last_seen)) / probe.rate
        assert abs(est["distinct_pages_from_hash"] - distinct) < tolerance


class TestProbeModes:
    def test_rate_validation(self):
        with pytest.raises(ValueError, match="rate"):
            SamplingProbe(0.0)
        with pytest.raises(ValueError, match="rate"):
            SamplingProbe(1.5)

    def test_detail_mode_gives_up_batch_safety(self):
        assert SamplingProbe(1 / 64).batch_safe is True
        detail = SamplingProbe(1 / 64, detail=True)
        assert detail.batch_safe is False
        assert set(detail.hists) == {
            "reuse_distance", "tlb_miss_gap", "io_batch", "eviction_batch"
        }

    def test_measure_phase_resets_collection(self):
        probe = SamplingProbe(1.0, seed=0)
        probe.on_access(0, 42)
        assert probe.tracked_accesses == 1
        probe.on_phase(10, "measure")
        assert probe.tracked_accesses == 0
        assert probe._last_seen == {}

    def test_as_dict_is_json_ready(self):
        import json

        probe = SamplingProbe(1 / 4, seed=1)
        for i, vpn in enumerate(GOLDEN_VPNS["uniform"][:200]):
            probe.on_access(i, vpn)
        payload = json.loads(json.dumps(probe.as_dict()))
        assert payload["stride"] == 4
        assert payload["counters"]["accesses"] == 200


class TestFastPathStaysEnabled:
    """The acceptance gate: a batch-safe probe must not force the
    per-access replay (which is ``MemoryManagementAlgorithm.run``)."""

    def _poisoned_mm(self, monkeypatch):
        def boom(self, trace):
            raise AssertionError("fell back to the per-access base replay")

        monkeypatch.setattr(MemoryManagementAlgorithm, "run", boom)
        return PhysicalHugePageMM(64, 1024, huge_page_size=16)

    def test_batch_safe_probe_rides_the_fast_path(self, monkeypatch):
        mm = self._poisoned_mm(monkeypatch)
        mm.probe = SamplingProbe(1 / 8, seed=0)
        trace = np.random.default_rng(0).integers(0, 4096, 2000)
        ledger = mm.run(trace)  # must NOT reach the poisoned base run
        assert ledger.accesses == 2000
        assert mm.probe.counters["accesses"] == 2000
        assert mm.probe.counters["ios"] == ledger.ios
        assert mm.probe.counters["tlb_misses"] == ledger.tlb_misses

    def test_detail_probe_falls_back(self, monkeypatch):
        mm = self._poisoned_mm(monkeypatch)
        mm.probe = SamplingProbe(1 / 8, seed=0, detail=True)
        with pytest.raises(AssertionError, match="per-access base replay"):
            mm.run(np.arange(100))

    def test_probed_ledger_identical_to_unprobed(self):
        trace = np.random.default_rng(1).integers(0, 4096, 3000)
        plain = PhysicalHugePageMM(64, 1024, huge_page_size=16)
        plain.run(trace)
        probed = PhysicalHugePageMM(64, 1024, huge_page_size=16)
        probed.probe = SamplingProbe(1 / 8, seed=0)
        probed.run(trace)
        assert plain.ledger.as_dict() == probed.ledger.as_dict()
