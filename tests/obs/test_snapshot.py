"""Tests for the mergeable observability snapshot (repro.obs.snapshot).

Pin the merge algebra (associativity, the meta-conflict guard) and the
from_run lift: exact ledger counters, probe histograms and tallies,
allocator bucket loads, tagged metrics rows.
"""

import json

import numpy as np
import pytest

from repro.mmu import DecoupledMM, PhysicalHugePageMM
from repro.obs import IntervalMetrics, LogHistogram, ObsSnapshot, SamplingProbe
from repro.sim import simulate


def _trace(n=3000, pages=1 << 12, seed=0):
    return np.random.default_rng(seed).integers(0, pages, n)


def _snap(seed=0, label=None, metrics_every=None):
    mm = PhysicalHugePageMM(64, 1024, huge_page_size=16)
    probe = SamplingProbe(1 / 8, seed=3)
    metrics = IntervalMetrics(every=metrics_every) if metrics_every else None
    ledger = simulate(
        mm, _trace(seed=seed), warmup=500, probe=probe, metrics=metrics
    )
    return ObsSnapshot.from_run(
        ledger, probe=probe, metrics=metrics, mm=mm, label=label
    )


class TestFromRun:
    def test_counters_are_the_exact_ledger(self):
        mm = PhysicalHugePageMM(64, 1024, huge_page_size=16)
        probe = SamplingProbe(1 / 8, seed=3)
        ledger = simulate(mm, _trace(), warmup=500, probe=probe)
        snap = ObsSnapshot.from_run(ledger, probe=probe)
        for key in ("accesses", "ios", "tlb_misses", "tlb_hits"):
            assert snap.counters[key] == getattr(ledger, key)
        assert snap.counters["sampled_accesses"] == probe.sampled_accesses
        assert snap.counters["tracked_pages"] == len(probe._last_seen)
        assert snap.meta["runs"] == 1
        assert snap.meta["rate"] == probe.rate

    def test_histograms_are_defensive_copies(self):
        probe = SamplingProbe(1.0, seed=0)
        for i in range(64):
            probe.on_access(i, i % 8)
        snap = ObsSnapshot.from_run(_FakeLedger(), probe=probe)
        before = snap.hists["reuse_distance"].n
        probe.on_access(64, 0)  # mutate the probe after snapshotting
        assert snap.hists["reuse_distance"].n == before

    def test_decoupled_mm_contributes_bucket_loads(self):
        mm = DecoupledMM(64, 1024, seed=0)
        ledger = mm.run(_trace(1000))
        snap = ObsSnapshot.from_run(ledger, mm=mm)
        assert "bucket_load" in snap.hists
        assert snap.hists["bucket_load"].n > 0

    def test_metrics_rows_are_tagged_with_the_label(self):
        snap = _snap(label="cell-7", metrics_every=500)
        assert snap.rows
        assert all(row["task"] == "cell-7" for row in snap.rows)


class _FakeLedger:
    def as_dict(self):
        return {"accesses": 64, "ios": 0}


class TestMerge:
    def test_merge_is_associative(self):
        a, b, c = _snap(seed=0), _snap(seed=1), _snap(seed=2)
        assert a.merge(b).merge(c) == a.merge(b.merge(c))

    def test_merge_sums_counters_and_histograms(self):
        a, b = _snap(seed=0), _snap(seed=1)
        merged = a.merge(b)
        assert merged.counters["ios"] == a.counters["ios"] + b.counters["ios"]
        assert merged.meta["runs"] == 2
        assert (
            merged.hists["reuse_distance"].n
            == a.hists["reuse_distance"].n + b.hists["reuse_distance"].n
        )

    def test_meta_conflict_is_rejected(self):
        a = ObsSnapshot(meta={"runs": 1, "rate": 0.125})
        b = ObsSnapshot(meta={"runs": 1, "rate": 0.25})
        with pytest.raises(ValueError, match="meta\\['rate'\\]"):
            a.merge(b)

    def test_one_sided_meta_survives(self):
        a = ObsSnapshot(meta={"runs": 1, "rate": 0.125})
        b = ObsSnapshot(meta={"runs": 1})
        assert a.merge(b).meta["rate"] == 0.125

    def test_merge_all_skips_none_and_handles_empty(self):
        assert ObsSnapshot.merge_all([]) == ObsSnapshot()
        a, b = _snap(seed=0), _snap(seed=1)
        assert ObsSnapshot.merge_all([a, None, b]) == a.merge(b)

    def test_rows_concatenate_in_order(self):
        a = ObsSnapshot(rows=[{"w": 0}])
        b = ObsSnapshot(rows=[{"w": 1}])
        assert a.merge(b).rows == [{"w": 0}, {"w": 1}]


class TestEstimates:
    def test_scale_ups_use_recorded_meta(self):
        snap = ObsSnapshot(
            counters={"sampled_accesses": 10, "tracked_accesses": 24,
                      "tracked_pages": 4},
            meta={"runs": 1, "stride": 8, "rate": 0.125},
        )
        est = snap.estimates()
        assert est["accesses_from_stride"] == 80.0
        assert est["accesses_from_hash"] == 192.0
        assert est["tracked_pages_scaled"] == 32.0

    def test_no_probe_meta_no_estimates(self):
        assert ObsSnapshot(counters={"ios": 5}).estimates() == {}


class TestSerialization:
    def test_round_trip(self):
        snap = _snap(seed=0, label="x", metrics_every=700)
        clone = ObsSnapshot.from_dict(json.loads(json.dumps(snap.as_dict())))
        assert clone == snap

    def test_kind_is_validated(self):
        with pytest.raises(ValueError, match="obs_snapshot"):
            ObsSnapshot.from_dict({"kind": "bench_sweep"})

    def test_to_json_creates_parents(self, tmp_path):
        out = tmp_path / "deep" / "nested" / "snap.json"
        path = _snap().to_json(out)
        assert path.is_file()
        assert json.loads(path.read_text())["kind"] == "obs_snapshot"

    def test_pickle_round_trip(self):
        import pickle

        snap = _snap(seed=0, metrics_every=600)
        assert pickle.loads(pickle.dumps(snap)) == snap


class TestHistogramEquality:
    def test_snapshot_equality_covers_hists(self):
        a = ObsSnapshot(hists={"h": _hist([1, 2])})
        b = ObsSnapshot(hists={"h": _hist([1, 2])})
        c = ObsSnapshot(hists={"h": _hist([1, 3])})
        assert a == b and a != c


def _hist(values):
    h = LogHistogram()
    h.record_many(values)
    return h
