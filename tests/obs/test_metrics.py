"""Tests for interval time-series metrics (window math, JSONL schema)."""

import json

import pytest

from repro.core import CostLedger
from repro.mmu import BasePageMM, PhysicalHugePageMM
from repro.obs import METRICS_FIELDS, IntervalMetrics
from repro.sim import simulate
from repro.workloads import ZipfWorkload


def _trace(n, pages=1024, seed=0):
    return ZipfWorkload(pages, s=0.9).generate(n, seed=seed)


class TestWindowMath:
    def test_exact_multiple_has_no_empty_tail(self):
        metrics = IntervalMetrics(every=500)
        simulate(BasePageMM(16, 256), _trace(2000), metrics=metrics)
        assert len(metrics.windows) == 4
        assert [w["accesses"] for w in metrics.windows] == [500] * 4
        assert metrics.windows[-1]["end"] == 2000

    def test_partial_tail_window_is_closed(self):
        metrics = IntervalMetrics(every=600)
        simulate(BasePageMM(16, 256), _trace(2000), metrics=metrics)
        assert [w["accesses"] for w in metrics.windows] == [600, 600, 600, 200]
        assert metrics.windows[-1]["start"] == 1800
        assert metrics.windows[-1]["end"] == 2000

    def test_window_larger_than_trace(self):
        metrics = IntervalMetrics(every=10_000)
        simulate(BasePageMM(16, 256), _trace(700), metrics=metrics)
        assert len(metrics.windows) == 1
        assert metrics.windows[0]["accesses"] == 700

    def test_windows_cover_measurement_phase_only(self):
        metrics = IntervalMetrics(every=300)
        ledger = simulate(BasePageMM(16, 256), _trace(2000), warmup=800,
                          metrics=metrics)
        assert sum(w["accesses"] for w in metrics.windows) == ledger.accesses == 1200

    def test_deltas_sum_to_ledger_totals(self):
        metrics = IntervalMetrics(every=137)  # deliberately ragged
        mm = PhysicalHugePageMM(32, 1024, huge_page_size=8)
        ledger = simulate(mm, _trace(3000), metrics=metrics)
        for field in ("accesses", "ios", "tlb_misses", "tlb_hits", "decoding_misses"):
            assert sum(w[field] for w in metrics.windows) == getattr(ledger, field)

    def test_rates_and_working_set(self):
        metrics = IntervalMetrics(every=250)
        simulate(BasePageMM(8, 64), _trace(1000, pages=512), metrics=metrics)
        for w in metrics.windows:
            assert w["io_rate"] == w["ios"] / w["accesses"]
            assert 1 <= w["working_set"] <= w["accesses"]
            assert 0.0 <= w["tlb_miss_rate"] <= 1.0

    def test_cost_prices_epsilon(self):
        metrics = IntervalMetrics(every=100, epsilon=0.5)
        simulate(BasePageMM(8, 64), _trace(400, pages=512), metrics=metrics)
        for w in metrics.windows:
            assert w["cost"] == pytest.approx(
                w["ios"] + 0.5 * (w["tlb_misses"] + w["decoding_misses"])
            )


class TestApi:
    def test_unbound_on_access_raises(self):
        with pytest.raises(RuntimeError):
            IntervalMetrics().on_access(0, 1)

    def test_every_must_be_positive(self):
        with pytest.raises(ValueError):
            IntervalMetrics(every=0)

    def test_series_and_rows(self):
        metrics = IntervalMetrics(every=100)
        simulate(BasePageMM(8, 64), _trace(350, pages=512), metrics=metrics)
        assert metrics.series("accesses") == [100, 100, 100, 50]
        assert [set(r) for r in metrics.rows()] == [set(METRICS_FIELDS)] * 4
        with pytest.raises(KeyError):
            metrics.series("nope")

    def test_manual_bind_and_finalize(self):
        ledger = CostLedger()
        metrics = IntervalMetrics(every=2)
        metrics.bind(ledger)
        for vpn in (1, 2, 3):
            ledger.accesses += 1
            metrics.on_access(ledger.accesses - 1, vpn)
        metrics.finalize()
        metrics.finalize()  # idempotent: no second empty tail
        assert [w["accesses"] for w in metrics.windows] == [2, 1]

    def test_jsonl_round_trip(self, tmp_path):
        metrics = IntervalMetrics(every=100)
        simulate(BasePageMM(8, 64), _trace(300, pages=512), metrics=metrics)
        path = metrics.to_jsonl(tmp_path / "metrics.jsonl")
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert rows == metrics.rows()

    def test_to_jsonl_creates_parent_directories(self, tmp_path):
        metrics = IntervalMetrics(every=100)
        simulate(BasePageMM(8, 64), _trace(200, pages=512), metrics=metrics)
        path = metrics.to_jsonl(tmp_path / "runs" / "deep" / "metrics.jsonl")
        assert path.is_file()
