"""Tests for the report renderer (repro.obs.report) and its CLI wiring."""

import json

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.mmu import PhysicalHugePageMM
from repro.obs import (
    ObsSnapshot,
    SamplingProbe,
    build_report,
    load_artifact,
    render_html,
    render_text,
)
from repro.obs.report import cost_breakdown
from repro.sim import simulate


def _snapshot_payload():
    mm = PhysicalHugePageMM(64, 1024, huge_page_size=16)
    probe = SamplingProbe(1 / 8, seed=3)
    trace = np.random.default_rng(0).integers(0, 4096, 3000)
    ledger = simulate(mm, trace, warmup=500, probe=probe)
    return ObsSnapshot.from_run(ledger, probe=probe, mm=mm).as_dict()


def _hotloop_payload():
    counters = {"accesses": 100, "ios": 7, "tlb_misses": 30, "tlb_hits": 70}
    return {
        "format": 1,
        "kind": "bench_hotloop",
        "machine": {"numpy": "2.0.0"},
        "config": {"ops": 100, "seed": 0},
        "geomean_ops_per_s": 5e5,
        "rows": [
            {"component": "tlb", "ops": 100, "ops_per_s": 9e5,
             "counters": {"hits": 70, "misses": 30, "fills": 30}},
            {"component": "mm:thp", "ops": 100, "ops_per_s": 6e5,
             "counters": counters},
            {"component": "mm+sampled:thp", "ops": 100, "ops_per_s": 5.7e5,
             "counters": counters},
            {"component": "mm+online:thp", "ops": 100, "ops_per_s": 5.82e5,
             "counters": counters},
        ],
    }


class TestLoadArtifact:
    def test_classifies_json_kinds(self, tmp_path):
        path = tmp_path / "snap.json"
        path.write_text(json.dumps(_snapshot_payload()))
        assert load_artifact(path)["kind"] == "obs_snapshot"

    def test_classifies_jsonl_as_metrics(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        path.write_text('{"window": 0, "accesses": 10, "cost": 1.5}\n\n')
        artifact = load_artifact(path)
        assert artifact["kind"] == "metrics_jsonl"
        assert artifact["rows"] == [{"window": 0, "accesses": 10, "cost": 1.5}]

    def test_unknown_kind_is_rejected(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"kind": "mystery"}')
        with pytest.raises(ValueError, match="unknown payload kind"):
            load_artifact(path)


class TestCostBreakdown:
    def test_matches_the_metrics_pricing(self):
        rows = cost_breakdown(
            {"ios": 10, "tlb_misses": 300, "decoding_misses": 100}, 0.01
        )
        total = next(r for r in rows if r["component"] == "total")
        assert total["cost"] == pytest.approx(10 + 0.01 * 400)
        shares = [r["share"] for r in rows if r["component"] != "total"]
        assert sum(shares) == pytest.approx(1.0)

    def test_zero_cost_does_not_divide_by_zero(self):
        assert cost_breakdown({}, 0.01)[-1]["share"] == 0.0


class TestRendering:
    def test_snapshot_text_report(self):
        payload = _snapshot_payload()
        payload["kind"] = "obs_snapshot"
        text = render_text(build_report([{**payload, "path": "x.json"}]))
        assert "exact counters" in text
        assert "cost breakdown" in text
        assert "reuse_distance" in text
        assert "sampling estimates" in text

    def test_hotloop_report_has_probe_overhead_table(self):
        text = render_text(build_report([_hotloop_payload()]))
        assert "probe overhead" in text
        assert "sampled" in text and "online" in text
        assert "0.95" in text  # 5.7e5 / 6e5
        assert "0.97" in text  # 5.82e5 / 6e5

    def test_trend_note_against_baseline_dir(self, tmp_path):
        baseline = dict(_hotloop_payload(), geomean_ops_per_s=4e5)
        (tmp_path / "BENCH_hotloop.json").write_text(json.dumps(baseline))
        text = render_text(
            build_report([_hotloop_payload()], baseline_dir=tmp_path)
        )
        assert "throughput trend" in text
        assert "+25.0%" in text

    def test_missing_baseline_is_a_note_not_an_error(self, tmp_path):
        text = render_text(
            build_report([_hotloop_payload()], baseline_dir=tmp_path / "no")
        )
        assert "trend skipped" in text

    def test_metrics_attribution_groups_by_task(self):
        rows = [
            {"task": t, "window": w, "accesses": 100, "ios": 5,
             "tlb_misses": 20, "cost": 5.2}
            for t in ("a", "b") for w in range(3)
        ]
        text = render_text(
            build_report([{"kind": "metrics_jsonl", "rows": rows}])
        )
        assert "per-task cost attribution" in text
        assert "windows" in text

    def test_html_is_self_contained(self):
        html_doc = render_html(
            build_report([_hotloop_payload()]), title="t<br>est"
        )
        assert html_doc.startswith("<!doctype html>")
        assert "t&lt;br&gt;est" in html_doc  # titles are escaped
        assert "<table>" in html_doc
        assert "src=" not in html_doc and "href=" not in html_doc

    def test_empty_report(self):
        assert render_text([]) == "(nothing to report)"


class TestCli:
    def test_report_subcommand_end_to_end(self, tmp_path, capsys):
        snap = tmp_path / "snap.json"
        snap.write_text(json.dumps(_snapshot_payload()))
        html_out = tmp_path / "out" / "report.html"
        code = cli_main([
            "report", str(snap), "--html-out", str(html_out),
            "--baseline-dir", str(tmp_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "exact counters" in out
        assert html_out.is_file()
        assert html_out.read_text().startswith("<!doctype html>")

    def test_bad_input_exits_nonzero(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"kind": "mystery"}')
        with pytest.raises(SystemExit, match="report:"):
            cli_main(["report", str(bad)])
