"""Tests for observability wiring across sim/bench/cli plus the satellite
fixes (sweep skip warning, extra_* columns, logging hygiene)."""

import json
import logging


from repro.bench import compare_algorithms
from repro.cli import main
from repro.core import CostLedger
from repro.mmu import BasePageMM, WritebackHugePageMM
from repro.sim import RunRecord, simulate, sweep_huge_page_sizes
from repro.workloads import ZipfWorkload


def _trace(n=4000, pages=2048, seed=0):
    return ZipfWorkload(pages, s=0.9).generate(n, seed=seed)


class TestSweepWiring:
    def test_timing_stamps_present(self):
        records = sweep_huge_page_sizes(
            _trace(), tlb_entries=32, ram_pages=1024, sizes=[1, 8], warmup=500
        )
        for r in records:
            assert r.params["elapsed_s"] > 0
            assert r.params["accesses_per_s"] > 0
            assert r.metrics is None

    def test_metrics_every_attaches_series(self):
        records = sweep_huge_page_sizes(
            _trace(), tlb_entries=32, ram_pages=1024, sizes=[1, 8],
            warmup=1000, metrics_every=1000,
        )
        for r in records:
            assert len(r.metrics.windows) == 3  # 3000 measured / 1000
            assert sum(w["accesses"] for w in r.metrics.windows) == 3000

    def test_skipped_size_warns(self, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.sim.simulator"):
            records = sweep_huge_page_sizes(
                _trace(500), tlb_entries=16, ram_pages=64, sizes=[1, 128]
            )
        assert len(records) == 1
        assert any("skipping h=128" in m for m in caplog.messages)

    def test_no_warning_when_nothing_skipped(self, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.sim.simulator"):
            sweep_huge_page_sizes(
                _trace(500), tlb_entries=16, ram_pages=64, sizes=[1, 2]
            )
        assert caplog.messages == []


class TestCompareAlgorithms:
    def test_throughput_recorded_per_run(self):
        trace = _trace()
        records = compare_algorithms(
            trace,
            {"a": BasePageMM(32, 1024), "b": BasePageMM(64, 1024)},
            warmup=500,
        )
        assert [r.algorithm for r in records] == ["a", "b"]
        for r in records:
            assert r.params["accesses_per_s"] > 0


class TestAsRowExtras:
    def test_extra_counters_survive_as_prefixed_columns(self):
        mm = WritebackHugePageMM(8, 64, huge_page_size=8, write_fraction=1.0, seed=0)
        simulate(mm, _trace(2000, pages=1024))
        row = RunRecord(algorithm=mm.name, ledger=mm.ledger).as_row()
        assert row["extra_writebacks"] > 0
        assert row["extra_writeback_ios"] == row["extra_writebacks"] * 8
        assert "writebacks" not in row  # no bare (collidable) extra keys

    def test_extras_cannot_shadow_core_counters(self):
        ledger = CostLedger(ios=3, extra={"ios": 99})
        row = RunRecord(algorithm="x", ledger=ledger).as_row()
        assert row["ios"] == 3
        assert row["extra_ios"] == 99


class TestLoggingHygiene:
    def test_root_repro_logger_has_null_handler(self):
        import repro  # noqa: F401  (import installs the handler)

        handlers = logging.getLogger("repro").handlers
        assert any(isinstance(h, logging.NullHandler) for h in handlers)


class TestCliTrace:
    def test_trace_smoke(self, capsys, tmp_path):
        metrics_out = tmp_path / "m.jsonl"
        events_out = tmp_path / "e.jsonl"
        assert main([
            "trace", "--panel", "a", "--scale", "4096",
            "--accesses", "4000", "--tlb", "32",
            "--metrics-out", str(metrics_out),
            "--events-out", str(events_out),
        ]) == 0
        out = capsys.readouterr().out
        assert "kacc/s" in out and "tlb_miss_rate" in out
        windows = [json.loads(l) for l in metrics_out.read_text().splitlines()]
        assert len(windows) >= 2
        assert sum(w["accesses"] for w in windows) == 2000  # measured half
        events = [json.loads(l) for l in events_out.read_text().splitlines()]
        assert {"kind": "phase", "label": "measure", "t": 2000} in events

    def test_trace_decoupled(self, capsys):
        assert main([
            "trace", "--panel", "a", "--scale", "4096", "--algorithm",
            "decoupled", "--accesses", "2000", "--tlb", "32",
        ]) == 0
        assert "decoupled" in capsys.readouterr().out

    def test_fig1_metrics_out(self, capsys, tmp_path):
        metrics_out = tmp_path / "fig1.jsonl"
        assert main([
            "fig1", "--panel", "a", "--scale", "4096",
            "--accesses", "2000", "--tlb", "16",
            "--metrics-out", str(metrics_out), "--window", "500",
        ]) == 0
        out = capsys.readouterr().out
        assert "kacc/s" in out
        rows = [json.loads(l) for l in metrics_out.read_text().splitlines()]
        hs = {row["h"] for row in rows}
        assert hs == {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

    def test_log_level_routes_sweep_warning(self, capsys):
        # ram for panel a at scale 4096 is 1024 pages; a giant --h cannot
        # fit, which the trace command reports as SystemExit — use fig1's
        # sweep instead, which only logs.
        logger = logging.getLogger("repro")
        before = list(logger.handlers)
        try:
            assert main([
                "--log-level", "info", "fig1", "--panel", "a", "--scale",
                "4096", "--accesses", "1000", "--tlb", "16",
            ]) == 0
            assert logger.level == logging.INFO
            assert any(
                isinstance(h, logging.StreamHandler)
                and not isinstance(h, logging.NullHandler)
                for h in logger.handlers
            )
        finally:
            logger.handlers[:] = before
            logger.setLevel(logging.NOTSET)
