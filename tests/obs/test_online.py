"""Online-vs-offline parity for the streaming analysis probes.

Pins the fidelity contract from ``repro/obs/online.py``'s docstring: over
the golden-cell traces (``tests/check/goldens.py``), the streaming probes
at ``rate=1`` record *exactly* what the offline ``analysis/`` tools
compute — regardless of how the stream is chopped into batches — and the
probes are batch-safe, so the ``mmu`` vectorized fast paths stay enabled
under them.
"""

import numpy as np
import pytest

from repro.analysis.stackdist import COLD, stack_distances
from repro.analysis.workingset import working_set_sizes
from repro.mmu.base import MemoryManagementAlgorithm
from repro.obs import (
    LogHistogram,
    MultiProbe,
    ObsSnapshot,
    OnlineStackDistance,
    OnlineWorkingSet,
)
from repro.obs.online import _hash_threshold
from tests.check.goldens import WORKLOADS, build_mm, build_trace

#: fast-path algorithms whose vectorized run() must survive these probes.
FAST_MMS = ("physical-huge", "decoupled", "hybrid", "thp")

#: uneven on purpose: exercises the carry buffer across batch boundaries.
BATCH = 113


def _feed(probe, trace, batch=BATCH):
    for i in range(0, len(trace), batch):
        probe.on_batch(i, np.asarray(trace[i : i + batch]), None, None)


def _offline_ws_hist(trace, tau):
    hist = LogHistogram()
    for size in working_set_sizes(trace, tau):
        hist.record(int(size))
    return hist


def _offline_sd(trace):
    hist = LogHistogram()
    cold = 0
    for d in stack_distances(trace):
        if d == COLD:
            cold += 1
        else:
            hist.record(int(d))
    return hist, cold


class TestWorkingSetParity:
    @pytest.mark.parametrize("workload", WORKLOADS)
    @pytest.mark.parametrize("tau", (37, 512))
    def test_exact_over_golden_traces(self, workload, tau):
        trace = build_trace(workload)
        probe = OnlineWorkingSet(tau)
        _feed(probe, trace)
        assert probe.hists["working_set"].as_dict() == _offline_ws_hist(
            trace, tau
        ).as_dict()
        assert probe.windows == len(trace)
        assert probe.tracked_accesses == len(trace)

    def test_batching_is_invisible(self):
        trace = build_trace("zipf")
        one = OnlineWorkingSet(64)
        one.on_batch(0, np.asarray(trace), None, None)
        many = OnlineWorkingSet(64)
        _feed(many, trace, batch=7)
        assert one.hists["working_set"].as_dict() == many.hists[
            "working_set"
        ].as_dict()

    def test_sample_every_picks_the_offline_subsequence(self):
        trace = build_trace("uniform")
        every = 13
        probe = OnlineWorkingSet(100, sample_every=every)
        _feed(probe, trace)
        offline = working_set_sizes(trace, 100)
        expected = LogHistogram()
        for t in range(every - 1, len(trace), every):
            expected.record(int(offline[t]))
        assert probe.hists["working_set"].as_dict() == expected.as_dict()

    def test_sampled_mode_matches_masked_reference(self):
        trace = build_trace("zipf")
        probe = OnlineWorkingSet(200, sample_every=7, rate=0.25, seed=3)
        _feed(probe, trace, batch=997)
        # reference: the same hashed-VPN mask applied to full windows
        arr = np.asarray(trace, dtype=np.int64)
        from repro.obs.sampling import _splitmix64_many

        keys = arr.astype(np.uint64) ^ np.uint64(probe._salt)
        mask = _splitmix64_many(keys) < np.uint64(probe._threshold)
        expected = LogHistogram()
        for t in range(6, len(trace), 7):
            lo = max(0, t - 200 + 1)
            win = arr[lo : t + 1][mask[lo : t + 1]]
            expected.record(int(np.unique(win).size) * 4)
        assert probe.hists["working_set"].as_dict() == expected.as_dict()
        assert probe.tracked_accesses == int(mask.sum())

    def test_measure_phase_resets(self):
        trace = build_trace("zipf")
        warm = OnlineWorkingSet(64)
        _feed(warm, trace[:500])
        warm.on_phase(500, "measure")
        _feed(warm, trace[500:])
        fresh = OnlineWorkingSet(64)
        _feed(fresh, trace[500:])
        assert warm.hists["working_set"].as_dict() == fresh.hists[
            "working_set"
        ].as_dict()

    def test_as_dict_is_json_shaped(self):
        probe = OnlineWorkingSet(32, sample_every=4, rate=0.5, seed=9)
        _feed(probe, build_trace("uniform")[:400])
        d = probe.as_dict()
        assert d["tau"] == 32 and d["sample_every"] == 4
        assert d["windows"] == probe.windows
        assert "working_set" in d["hists"]

    def test_validation(self):
        with pytest.raises(ValueError):
            OnlineWorkingSet(0)
        with pytest.raises(ValueError):
            OnlineWorkingSet(8, sample_every=0)
        with pytest.raises(ValueError):
            OnlineWorkingSet(8, rate=0.0)
        with pytest.raises(ValueError):
            OnlineWorkingSet(8, rate=1.5)


class TestStackDistanceParity:
    @pytest.mark.parametrize("workload", WORKLOADS)
    def test_exact_over_golden_traces(self, workload):
        trace = build_trace(workload)
        probe = OnlineStackDistance()
        _feed(probe, trace)
        expected, cold = _offline_sd(trace)
        assert probe.hists["stack_distance"].as_dict() == expected.as_dict()
        assert probe.cold_accesses == cold
        assert probe.tracked_accesses == len(trace)

    def test_compaction_preserves_distances(self, monkeypatch):
        # a tiny Fenwick floor forces many compactions over one trace
        monkeypatch.setattr("repro.obs.online._MIN_FENWICK", 16)
        trace = build_trace("uniform")
        probe = OnlineStackDistance()
        _feed(probe, trace, batch=31)
        expected, cold = _offline_sd(trace)
        assert probe.hists["stack_distance"].as_dict() == expected.as_dict()
        assert probe.cold_accesses == cold

    def test_sampled_mode_is_the_shards_estimator(self):
        trace = build_trace("zipf")
        rate, seed = 0.25, 5
        probe = OnlineStackDistance(rate=rate, seed=seed)
        _feed(probe, trace, batch=331)
        # reference: offline distances over the tracked-page substream
        arr = np.asarray(trace, dtype=np.int64)
        from repro.obs.sampling import _splitmix64_many

        keys = arr.astype(np.uint64) ^ np.uint64(probe._salt)
        sub = arr[_splitmix64_many(keys) < np.uint64(probe._threshold)]
        expected = LogHistogram()
        cold = 0
        for d in stack_distances(sub):
            if d == COLD:
                cold += 1
            else:
                expected.record(int(round(d / rate)))
        assert probe.hists["stack_distance"].as_dict() == expected.as_dict()
        assert probe.cold_accesses == cold
        assert probe.tracked_accesses == len(sub)
        est = probe.estimates()
        assert est["cold_accesses_scaled"] == cold / rate
        assert est["distinct_pages_from_hash"] == len(set(sub.tolist())) / rate

    def test_measure_phase_resets(self):
        trace = build_trace("markov")
        warm = OnlineStackDistance()
        _feed(warm, trace[:700])
        warm.on_phase(700, "measure")
        _feed(warm, trace[700:])
        fresh = OnlineStackDistance()
        _feed(fresh, trace[700:])
        assert warm.hists["stack_distance"].as_dict() == fresh.hists[
            "stack_distance"
        ].as_dict()
        assert warm.cold_accesses == fresh.cold_accesses

    def test_as_dict_and_snapshot_duck_typing(self):
        probe = OnlineStackDistance(rate=0.5, seed=2)
        mm = build_mm("thp")
        mm.probe = probe
        ledger = mm.run(build_trace("zipf")[:600])
        d = probe.as_dict()
        assert d["tracked_pages"] == len(probe._last_seen)
        snap = ObsSnapshot.from_run(ledger, probe=probe)
        assert snap.counters["tracked_pages"] == len(probe._last_seen)
        assert snap.counters["tracked_accesses"] == probe.tracked_accesses
        assert "stack_distance" in snap.hists
        assert snap.meta["rate"] == 0.5

    def test_hash_threshold_contract(self):
        assert _hash_threshold(1.0) is None
        assert _hash_threshold(0.5) == 1 << 63
        with pytest.raises(ValueError):
            _hash_threshold(0.0)
        with pytest.raises(ValueError):
            _hash_threshold(1.0000001)


class TestFastPathStaysEnabled:
    """Batch-safe online probes must never force the per-access replay."""

    @pytest.fixture
    def forbid_slow_paths(self, monkeypatch):
        def boom(self, trace):  # pragma: no cover - failure path
            raise AssertionError("probe forced the per-access replay")

        monkeypatch.setattr(MemoryManagementAlgorithm, "_run_probed", boom)
        monkeypatch.setattr(MemoryManagementAlgorithm, "_run_batched", boom)

    @pytest.mark.parametrize("name", FAST_MMS)
    def test_counters_identical_and_fast_path_kept(
        self, name, forbid_slow_paths
    ):
        trace = build_trace("zipf")
        plain = build_mm(name)
        expected = plain.run(trace)

        probed = build_mm(name)
        probed.probe = MultiProbe(
            [OnlineWorkingSet(128, sample_every=16), OnlineStackDistance()]
        )
        ledger = probed.run(trace)
        assert ledger.snapshot() == expected.snapshot()

    @pytest.mark.parametrize("name", FAST_MMS)
    def test_online_hists_match_direct_feed(self, name):
        trace = build_trace("zipf")
        direct = OnlineStackDistance()
        direct.on_batch(0, np.asarray(trace), None, None)

        probed = build_mm(name)
        attached = OnlineStackDistance()
        probed.probe = attached
        probed.run(trace)
        assert attached.hists["stack_distance"].as_dict() == direct.hists[
            "stack_distance"
        ].as_dict()
