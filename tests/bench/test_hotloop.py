"""Tests for the per-component hot-loop microbenchmark (repro bench --hotloop)."""

import pytest

from repro.bench import hotloop
from repro.bench.hotloop import (
    FAILURE_MMS,
    HOTLOOP_CONFIG,
    SAMPLED_MMS,
    bench_hotloop,
    key_stream,
)
from repro.mmu import MM_NAMES
from repro.paging import POLICIES

#: CI-sized shrink of the preset: same shape, two orders less work.
_SMALL = dict(
    HOTLOOP_CONFIG,
    ops=2_000,
    mm_accesses=1_000,
    tlb_entries=64,
    cache_pages=64,
    mm_tlb_entries=32,
    mm_ram_pages=256,
)


@pytest.fixture
def small_config(monkeypatch):
    monkeypatch.setattr(hotloop, "HOTLOOP_CONFIG", _SMALL)
    return _SMALL


class TestKeyStream:
    def test_deterministic(self):
        a = key_stream(500, 1 << 12, 1 << 8, 90, seed=7)
        b = key_stream(500, 1 << 12, 1 << 8, 90, seed=7)
        assert a == b

    def test_seed_changes_stream(self):
        assert key_stream(500, 1 << 12, 1 << 8, 90, seed=0) != key_stream(
            500, 1 << 12, 1 << 8, 90, seed=1
        )

    def test_range_and_skew(self):
        keys = key_stream(5_000, 1 << 12, 1 << 8, 90, seed=0)
        assert all(0 <= k < (1 << 12) for k in keys)
        hot = sum(1 for k in keys if k < (1 << 8))
        # ~90% land in the hot subset (plus uniform spillover)
        assert hot / len(keys) > 0.85

    def test_known_prefix_pinned(self):
        """The LCG stream is part of the payload contract: changing it makes
        every committed baseline's counters incomparable."""
        assert key_stream(4, 1 << 12, 1 << 8, 90, seed=0) == [111, 134, 2785, 85]


class TestBenchHotloop:
    def test_payload_covers_every_component(self, small_config):
        rows, payload = bench_hotloop()
        names = [r["component"] for r in rows]
        assert names[0] == "tlb"
        assert [n for n in names if n.startswith("cache:")] == [
            f"cache:{p}" for p in sorted(POLICIES)
        ]
        assert [n for n in names if n.startswith("mm:")] == [
            f"mm:{m}" for m in MM_NAMES
        ] + [f"mm:{m}+fail" for m in sorted(FAILURE_MMS)]
        assert sorted(n for n in names if n.startswith("mm@object:")) == sorted(
            [f"mm@object:{m}" for m in SAMPLED_MMS]
            + [f"mm@object:{m}+fail" for m in FAILURE_MMS]
        )
        assert sorted(n for n in names if n.startswith("mm+sampled:")) == [
            f"mm+sampled:{m}" for m in sorted(SAMPLED_MMS)
        ]
        assert sorted(n for n in names if n.startswith("mm+online:")) == [
            f"mm+online:{m}" for m in sorted(SAMPLED_MMS)
        ]
        assert sorted(n for n in names if n.startswith("mm+attrib:")) == [
            f"mm+attrib:{m}" for m in sorted(SAMPLED_MMS)
        ]
        assert payload["kind"] == "bench_hotloop"
        assert payload["format"] == 1
        assert payload["config"] == small_config
        assert payload["geomean_ops_per_s"] > 0
        assert payload["rows"] == rows

    def test_counters_are_reproducible(self, small_config):
        rows_a, _ = bench_hotloop()
        rows_b, _ = bench_hotloop()
        for a, b in zip(rows_a, rows_b):
            assert a["component"] == b["component"]
            assert a["counters"] == b["counters"]

    def test_probed_rows_match_unprobed_counters(self, small_config):
        """Neither the sampling probe nor the online analyses may perturb
        the simulation — the check_bench probed gate relies on this."""
        rows, _ = bench_hotloop()
        by = {r["component"]: r for r in rows}
        for prefix in ("mm+sampled:", "mm+online:", "mm+attrib:"):
            probed = [n for n in by if n.startswith(prefix)]
            assert sorted(probed) == [
                f"{prefix}{m}" for m in sorted(SAMPLED_MMS)
            ]
            for name in probed:
                twin = by[name.replace(prefix, "mm:", 1)]
                assert by[name]["counters"] == twin["counters"], name

    def test_engine_twins_match_counters(self, small_config):
        """The ``mm:`` rows run on the configured engine (array) and the
        ``mm@object:`` twins re-run on the object engine; both must
        simulate identically — the check_bench engine gate relies on it."""
        assert small_config["mm_engine"] == "array"
        rows, _ = bench_hotloop()
        by = {r["component"]: r for r in rows}
        for name in sorted(SAMPLED_MMS):
            assert (
                by[f"mm@object:{name}"]["counters"]
                == by[f"mm:{name}"]["counters"]
            ), name

    def test_failure_rows_fail_and_agree_across_engines(self, small_config):
        """The ``+fail`` cells must keep failing (else they stop covering
        the array engine's bailout path) and both engines must account the
        failures identically — the check_bench failure gate pins both."""
        rows, _ = bench_hotloop()
        by = {r["component"]: r for r in rows}
        for name in sorted(FAILURE_MMS):
            plain = by[f"mm:{name}+fail"]["counters"]
            twin = by[f"mm@object:{name}+fail"]["counters"]
            assert plain["paging_failures"] > 0, name
            assert plain["decoding_misses"] > 0, name
            assert plain == twin, name

    def test_seed_override_recorded_in_config(self, small_config):
        _, payload = bench_hotloop(seed=3)
        assert payload["config"]["seed"] == 3

    def test_rows_carry_timings(self, small_config):
        rows, _ = bench_hotloop()
        for r in rows:
            assert r["ops"] > 0
            assert r["elapsed_s"] >= 0
            assert r["ops_per_s"] >= 0
