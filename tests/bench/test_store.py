"""Tests for result persistence and diffing."""

import pytest

from repro.bench import diff_records, load_records, save_records
from repro.core import CostLedger
from repro.sim import RunRecord


def records(ios):
    return [
        RunRecord("x", CostLedger(ios=io, tlb_misses=100 - io), {"h": h})
        for h, io in ios.items()
    ]


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "r.json"
        save_records(path, records({1: 10, 8: 40}), params={"eps": 0.01})
        payload = load_records(path)
        assert payload["params"] == {"eps": 0.01}
        assert len(payload["rows"]) == 2
        assert payload["rows"][0]["algorithm"] == "x"
        assert "repro_version" in payload

    def test_format_guard(self, tmp_path):
        path = tmp_path / "r.json"
        path.write_text('{"format": 99, "rows": []}')
        with pytest.raises(ValueError, match="unsupported"):
            load_records(path)


class TestDiff:
    def payloads(self, tmp_path, a, b):
        pa = load_records(save_records(tmp_path / "a.json", records(a)))
        pb = load_records(save_records(tmp_path / "b.json", records(b)))
        return pa, pb

    def test_identical_is_empty(self, tmp_path):
        pa, pb = self.payloads(tmp_path, {1: 10}, {1: 10})
        assert diff_records(pa, pb) == []

    def test_changed_metric_reported(self, tmp_path):
        pa, pb = self.payloads(tmp_path, {1: 10}, {1: 20})
        diffs = diff_records(pa, pb)
        metrics = {d["metric"] for d in diffs}
        assert "ios" in metrics and "tlb_misses" in metrics
        io_diff = next(d for d in diffs if d["metric"] == "ios")
        assert io_diff["old"] == 10 and io_diff["new"] == 20
        assert io_diff["rel_change"] == pytest.approx(1.0)

    def test_rel_tol_suppresses_noise(self, tmp_path):
        pa, pb = self.payloads(tmp_path, {1: 1000}, {1: 1001})
        noisy = {d["metric"] for d in diff_records(pa, pb)}
        quiet = {d["metric"] for d in diff_records(pa, pb, rel_tol=0.01)}
        assert "ios" in noisy  # the 0.1% change is reported by default
        assert "ios" not in quiet  # ...and suppressed under the tolerance

    def test_timing_stamps_ignored_by_default(self, tmp_path):
        a, b = records({1: 10}), records({1: 10})
        a[0].params.update(elapsed_s=0.5, accesses_per_s=1e5)
        b[0].params.update(elapsed_s=0.9, accesses_per_s=2e5)
        pa = load_records(save_records(tmp_path / "a.json", a))
        pb = load_records(save_records(tmp_path / "b.json", b))
        assert diff_records(pa, pb) == []
        assert {d["metric"] for d in diff_records(pa, pb, ignore=())} == {
            "elapsed_s", "accesses_per_s",
        }

    def test_missing_row_flagged(self, tmp_path):
        pa, pb = self.payloads(tmp_path, {1: 10, 8: 20}, {1: 10})
        diffs = diff_records(pa, pb)
        assert any(d["metric"] == "<row>" and d["key"] == 8 for d in diffs)
