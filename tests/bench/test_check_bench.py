"""Tests for the CI perf-regression gate (tools/check_bench.py).

The gate is a stdlib-only script outside the package, so it is loaded by
file path rather than imported from ``repro``.
"""

import copy
import importlib.util
import json
from pathlib import Path

import pytest

_TOOL = Path(__file__).resolve().parents[2] / "tools" / "check_bench.py"
_spec = importlib.util.spec_from_file_location("check_bench", _TOOL)
check_bench = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_bench)


def _payload(tput=100_000.0, numpy_version="2.0.0"):
    return {
        "format": 1,
        "kind": "bench_sweep",
        "machine": {"numpy": numpy_version, "cpu_count": 4},
        "config": {"sizes": [1, 8], "seed": 0, "accesses": 1000},
        "accesses_per_s": tput,
        "rows": [
            {
                "algorithm": "physical",
                "h": 1,
                "accesses": 1000,
                "ios": 40,
                "tlb_misses": 200,
                "tlb_hits": 800,
                "decoding_misses": 0,
                "paging_failures": 0,
            },
            {
                "algorithm": "physical",
                "h": 8,
                "accesses": 1000,
                "ios": 25,
                "tlb_misses": 90,
                "tlb_hits": 910,
                "decoding_misses": 0,
                "paging_failures": 0,
            },
        ],
    }


class TestCompare:
    def test_identical_payloads_pass(self):
        code, messages = check_bench.compare(_payload(), _payload())
        assert code == check_bench.OK
        assert any("counters identical" in m for m in messages)

    def test_faster_run_passes(self):
        code, _ = check_bench.compare(_payload(100_000), _payload(250_000))
        assert code == check_bench.OK

    def test_throughput_regression_fails(self):
        code, messages = check_bench.compare(
            _payload(100_000), _payload(60_000), tolerance=0.25
        )
        assert code == check_bench.REGRESSION
        assert any(m.startswith("FAIL throughput") for m in messages)

    def test_small_dip_within_tolerance_passes(self):
        code, _ = check_bench.compare(
            _payload(100_000), _payload(80_000), tolerance=0.25
        )
        assert code == check_bench.OK

    def test_counter_drift_is_a_mismatch(self):
        new = _payload()
        new["rows"][1]["ios"] += 1
        code, messages = check_bench.compare(_payload(), new)
        assert code == check_bench.MISMATCH
        assert any("ios changed" in m for m in messages)

    def test_missing_cell_is_a_mismatch(self):
        new = _payload()
        del new["rows"][1]
        code, _ = check_bench.compare(_payload(), new)
        assert code == check_bench.MISMATCH

    def test_config_change_is_a_mismatch(self):
        new = _payload()
        new["config"]["seed"] = 1
        code, messages = check_bench.compare(_payload(), new)
        assert code == check_bench.MISMATCH
        assert any("configs differ" in m and "seed" in m for m in messages)

    def test_numpy_skew_skips_counters_in_auto_mode(self):
        new = _payload(numpy_version="2.4.0")
        new["rows"][0]["ios"] += 5  # would be a mismatch on same numpy
        code, messages = check_bench.compare(_payload(), new, counters="auto")
        assert code == check_bench.OK
        assert any("skipping counter comparison" in m for m in messages)

    def test_counters_always_overrides_numpy_skew(self):
        new = _payload(numpy_version="2.4.0")
        new["rows"][0]["ios"] += 5
        code, _ = check_bench.compare(_payload(), new, counters="always")
        assert code == check_bench.MISMATCH

    def test_counters_never_disables_the_check(self):
        new = _payload()
        new["rows"][0]["ios"] += 5
        code, _ = check_bench.compare(_payload(), new, counters="never")
        assert code == check_bench.OK

    def test_zero_baseline_throughput_skips_the_gate(self):
        code, messages = check_bench.compare(_payload(0.0), _payload(50.0))
        assert code == check_bench.OK
        assert any("skipping the gate" in m for m in messages)

    def test_regression_does_not_mask_mismatch(self):
        new = _payload(10_000.0)  # huge slowdown *and* counter drift
        new["rows"][0]["tlb_misses"] += 1
        code, _ = check_bench.compare(_payload(), new)
        assert code == check_bench.MISMATCH  # correctness outranks speed

    def test_compare_does_not_mutate_inputs(self):
        base, new = _payload(), _payload(60_000)
        base_copy, new_copy = copy.deepcopy(base), copy.deepcopy(new)
        check_bench.compare(base, new)
        assert base == base_copy and new == new_copy


def _hotloop_payload(geomean=500_000.0):
    return {
        "format": 1,
        "kind": "bench_hotloop",
        "machine": {"numpy": "2.0.0", "cpu_count": 4},
        "config": {"ops": 1000, "seed": 0},
        "geomean_ops_per_s": geomean,
        "rows": [
            {
                "component": "tlb",
                "ops": 1000,
                "ops_per_s": 900_000.0,
                "counters": {"hits": 700, "misses": 300, "fills": 300},
            },
            {
                "component": "cache:lru",
                "ops": 1000,
                "ops_per_s": 400_000.0,
                "counters": {"hits": 650, "misses": 350, "evictions": 340},
            },
        ],
    }


class TestCompareHotloop:
    def test_identical_payloads_pass(self):
        code, messages = check_bench.compare(_hotloop_payload(), _hotloop_payload())
        assert code == check_bench.OK
        assert any("counters identical" in m for m in messages)

    def test_geomean_regression_fails(self):
        code, messages = check_bench.compare(
            _hotloop_payload(500_000), _hotloop_payload(300_000), tolerance=0.25
        )
        assert code == check_bench.REGRESSION
        assert any(m.startswith("FAIL throughput") for m in messages)

    def test_dip_within_tolerance_passes(self):
        code, _ = check_bench.compare(
            _hotloop_payload(500_000), _hotloop_payload(400_000), tolerance=0.25
        )
        assert code == check_bench.OK

    def test_counter_drift_is_a_mismatch_despite_numpy_skew(self):
        # hotloop streams are numpy-free: auto mode never skips counters
        new = _hotloop_payload()
        new["machine"]["numpy"] = "2.4.0"
        new["rows"][1]["counters"]["hits"] += 1
        code, messages = check_bench.compare(
            _hotloop_payload(), new, counters="auto"
        )
        assert code == check_bench.MISMATCH
        assert any("cache:lru" in m and "counters changed" in m for m in messages)

    def test_counters_never_disables_the_check(self):
        new = _hotloop_payload()
        new["rows"][1]["counters"]["hits"] += 1
        code, _ = check_bench.compare(_hotloop_payload(), new, counters="never")
        assert code == check_bench.OK

    def test_missing_component_is_a_mismatch(self):
        new = _hotloop_payload()
        del new["rows"][1]
        code, _ = check_bench.compare(_hotloop_payload(), new)
        assert code == check_bench.MISMATCH

    def test_config_change_is_a_mismatch(self):
        new = _hotloop_payload()
        new["config"]["ops"] = 2000
        code, messages = check_bench.compare(_hotloop_payload(), new)
        assert code == check_bench.MISMATCH
        assert any("configs differ" in m and "ops" in m for m in messages)

    def test_kind_mix_is_a_mismatch(self):
        code, messages = check_bench.compare(_payload(), _hotloop_payload())
        assert code == check_bench.MISMATCH
        assert any("payload kinds differ" in m for m in messages)

    def test_load_payload_accepts_hotloop_kind(self, tmp_path):
        path = tmp_path / "h.json"
        path.write_text(json.dumps(_hotloop_payload()))
        assert check_bench.load_payload(str(path))["kind"] == "bench_hotloop"


def _probed_payload(ratio=0.95, counter_drift=0, online_ratio=None):
    """A hotloop payload with one plain fast-path MM plus probed twins:
    always an ``mm+sampled:`` row, and an ``mm+online:`` row when
    *online_ratio* is given."""
    payload = _hotloop_payload()
    counters = {"accesses": 1000, "ios": 40, "tlb_hits": 800, "tlb_misses": 200}
    payload["rows"] += [
        {
            "component": "mm:thp",
            "ops": 1000,
            "ops_per_s": 600_000.0,
            "counters": dict(counters),
        },
        {
            "component": "mm+sampled:thp",
            "ops": 1000,
            "ops_per_s": 600_000.0 * ratio,
            "counters": {**counters, "ios": counters["ios"] + counter_drift},
        },
    ]
    if online_ratio is not None:
        payload["rows"].append({
            "component": "mm+online:thp",
            "ops": 1000,
            "ops_per_s": 600_000.0 * online_ratio,
            "counters": dict(counters),
        })
    return payload


class TestProbedGate:
    """The within-payload probed-vs-mm gate (new run only)."""

    def test_cheap_probe_passes(self):
        code, messages = check_bench.compare(
            _probed_payload(ratio=0.95), _probed_payload(ratio=0.95)
        )
        assert code == check_bench.OK
        assert any("mm+sampled throughput" in m for m in messages)

    def test_expensive_probe_is_a_regression(self):
        code, messages = check_bench.compare(
            _probed_payload(ratio=0.95), _probed_payload(ratio=0.80)
        )
        assert code == check_bench.REGRESSION
        assert any(
            m.startswith("FAIL mm+sampled throughput") for m in messages
        )

    def test_online_rows_gated_independently(self):
        # a cheap sampling probe must not mask an expensive online probe
        code, messages = check_bench.compare(
            _probed_payload(ratio=0.95, online_ratio=0.95),
            _probed_payload(ratio=0.95, online_ratio=0.80),
        )
        assert code == check_bench.REGRESSION
        assert any("ok: mm+sampled throughput" in m for m in messages)
        assert any(
            m.startswith("FAIL mm+online throughput") for m in messages
        )

    def test_cheap_online_probe_passes(self):
        code, messages = check_bench.compare(
            _probed_payload(ratio=0.95, online_ratio=0.95),
            _probed_payload(ratio=0.95, online_ratio=0.95),
        )
        assert code == check_bench.OK
        assert any("mm+online throughput" in m for m in messages)

    def test_probe_tolerance_loosens_the_floor(self):
        code, _ = check_bench.compare(
            _probed_payload(ratio=0.95),
            _probed_payload(ratio=0.80),
            probe_tolerance=0.25,
        )
        assert code == check_bench.OK

    def test_perturbing_probe_is_a_mismatch(self):
        # the baseline's own sampled rows are NOT gated — only the new run's
        code, messages = check_bench.compare(
            _probed_payload(counter_drift=1), _probed_payload(counter_drift=1)
        )
        assert code == check_bench.MISMATCH
        assert any("never perturb" in m for m in messages)

    def test_gate_skipped_without_sampled_rows(self):
        code, messages = check_bench.compare(
            _hotloop_payload(), _hotloop_payload()
        )
        assert code == check_bench.OK
        assert not any("of unprobed" in m for m in messages)

    def test_probe_tolerance_cli_flag(self, tmp_path):
        base = tmp_path / "base.json"
        slow = tmp_path / "slow.json"
        base.write_text(json.dumps(_probed_payload(ratio=0.95)))
        slow.write_text(json.dumps(_probed_payload(ratio=0.80)))
        args = [str(base), str(slow)]
        assert check_bench.main(args) == check_bench.REGRESSION
        assert (
            check_bench.main(args + ["--probe-tolerance", "0.3"])
            == check_bench.OK
        )


class TestMain:
    def _write(self, path, payload):
        path.write_text(json.dumps(payload))
        return str(path)

    def test_exit_codes_via_cli(self, tmp_path):
        base = self._write(tmp_path / "base.json", _payload())
        good = self._write(tmp_path / "good.json", _payload(99_000))
        slow = self._write(tmp_path / "slow.json", _payload(10_000))
        assert check_bench.main([base, good]) == check_bench.OK
        assert check_bench.main([base, slow]) == check_bench.REGRESSION
        assert (
            check_bench.main([base, slow, "--tolerance", "0.95"]) == check_bench.OK
        )

    def test_malformed_payload_is_a_mismatch(self, tmp_path):
        base = self._write(tmp_path / "base.json", _payload())
        bad = self._write(tmp_path / "bad.json", {"kind": "something-else"})
        assert check_bench.main([base, bad]) == check_bench.MISMATCH
        assert check_bench.main([base, str(tmp_path / "absent.json")]) == (
            check_bench.MISMATCH
        )

    def test_load_payload_validates_kind(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"kind": "bench_sweep", "format": 99}))
        with pytest.raises(ValueError, match="format-1"):
            check_bench.load_payload(str(path))


class TestAppendHistory:
    def _write(self, path, payload):
        path.write_text(json.dumps(payload))
        return str(path)

    def test_passing_gate_appends_a_record(self, tmp_path):
        base = self._write(tmp_path / "base.json", _hotloop_payload())
        good = self._write(tmp_path / "good.json", _hotloop_payload())
        history = tmp_path / "history"
        code = check_bench.main(
            [base, good, "--append-history", str(history)]
        )
        assert code == check_bench.OK
        lines = (history / "history.jsonl").read_text().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["kind"] == "bench_history"
        assert record["payload_kind"] == "bench_hotloop"
        assert record["geomean"] == 500_000.0
        assert [r["component"] for r in record["rows"]] == ["tlb", "cache:lru"]
        assert record["ts"] and record["commit"]

    def test_failing_gate_never_appends(self, tmp_path):
        base = self._write(tmp_path / "base.json", _hotloop_payload(500_000))
        slow = self._write(tmp_path / "slow.json", _hotloop_payload(300_000))
        history = tmp_path / "history"
        code = check_bench.main(
            [base, slow, "--append-history", str(history)]
        )
        assert code == check_bench.REGRESSION
        assert not (history / "history.jsonl").exists()

    def test_records_accumulate_as_jsonl(self, tmp_path):
        sweep = self._write(tmp_path / "s.json", _payload(120_000))
        hot = self._write(tmp_path / "h.json", _hotloop_payload())
        check_bench.append_history(json.loads(Path(sweep).read_text()),
                                   str(tmp_path / "history"))
        check_bench.append_history(json.loads(Path(hot).read_text()),
                                   str(tmp_path / "history"))
        records = [
            json.loads(line)
            for line in (tmp_path / "history" / "history.jsonl")
            .read_text().splitlines()
        ]
        assert [r["payload_kind"] for r in records] == [
            "bench_sweep", "bench_hotloop"
        ]
        assert records[0]["geomean"] == 120_000.0
        assert records[0]["rows"] == []  # sweep records carry no row detail


def _failure_payload(paging_failures=3, drift=0):
    """A hotloop payload with one paging-failure engine-twin pair."""
    payload = _hotloop_payload()
    counters = {
        "accesses": 4000,
        "ios": 900,
        "tlb_hits": 2500,
        "tlb_misses": 1500,
        "decoding_misses": 40,
        "paging_failures": paging_failures,
    }
    payload["rows"] += [
        {
            "component": "mm:decoupled+fail",
            "ops": 4000,
            "ops_per_s": 500_000.0,
            "counters": dict(counters),
        },
        {
            "component": "mm@object:decoupled+fail",
            "ops": 4000,
            "ops_per_s": 150_000.0,
            "counters": {**counters, "ios": counters["ios"] + drift},
        },
    ]
    return payload


class TestFailureRowGate:
    """The engine-twin gate over the ``+fail`` paging-failure rows."""

    def test_failing_rows_pass(self):
        code, messages = check_bench.compare(
            _failure_payload(), _failure_payload()
        )
        assert code == check_bench.OK
        assert any("engine twin" in m for m in messages)

    def test_engine_divergence_is_a_mismatch(self):
        new = _failure_payload(drift=5)
        code, messages = check_bench.compare(copy.deepcopy(new), new)
        assert code == check_bench.MISMATCH
        assert any("array-engine twin" in m for m in messages)

    def test_zero_paging_failures_is_a_mismatch(self):
        # a failure row that stopped failing no longer tests the bailout
        # path — the gate must refuse it even though the twins agree
        new = _failure_payload(paging_failures=0)
        code, messages = check_bench.compare(copy.deepcopy(new), new)
        assert code == check_bench.MISMATCH
        assert any("no paging_failures" in m for m in messages)
