"""Tests for the benchmark harness and reporting (small-scale runs)."""

import numpy as np
import pytest

from repro.bench import (
    ascii_log_chart,
    compare_algorithms,
    epsilon_sweep,
    figure1_experiment,
    figure1_workload,
    format_figure1,
    format_table,
    hybrid_sweep,
    simulation_theorem_experiment,
)
from repro.mmu import BasePageMM
from repro.workloads import BimodalWorkload, Graph500Workload, RandomWalkWorkload


class TestFigure1Workload:
    def test_panel_a(self):
        wl, ram = figure1_workload("a", 1 << 14)
        assert isinstance(wl, BimodalWorkload)
        assert ram == (1 << 14) // 4

    def test_panel_b(self):
        wl, ram = figure1_workload("b", 1 << 12)
        assert isinstance(wl, RandomWalkWorkload)
        assert ram == (1 << 12) // 2

    def test_panel_c(self):
        wl, ram = figure1_workload("c", 8)
        assert isinstance(wl, Graph500Workload)
        assert ram < wl.footprint_pages

    def test_unknown_panel(self):
        with pytest.raises(ValueError):
            figure1_workload("d")


class TestFigure1Experiment:
    def test_tradeoff_shape(self):
        wl, ram = figure1_workload("a", 1 << 14)
        records = figure1_experiment(
            wl,
            ram_pages=ram,
            tlb_entries=32,
            n_accesses=30_000,
            sizes=[1, 8, 64, 512],
        )
        hs = [r.params["h"] for r in records]
        assert hs == [1, 8, 64, 512]
        ios = [r.ios for r in records]
        misses = [r.tlb_misses for r in records]
        assert ios[-1] > ios[0] * 50  # IO blow-up
        assert misses[-1] < misses[0]  # TLB win

    def test_sizes_filtered_to_fit_ram(self):
        wl, _ = figure1_workload("a", 1 << 12)
        records = figure1_experiment(
            wl, ram_pages=64, tlb_entries=8, n_accesses=2000, sizes=[1, 64, 128]
        )
        assert [r.params["h"] for r in records] == [1, 64]


class TestCompareAndSweep:
    def test_compare_algorithms(self):
        rng = np.random.default_rng(0)
        trace = rng.integers(0, 512, 4000)
        records = compare_algorithms(
            trace,
            {"a": BasePageMM(8, 128), "b": BasePageMM(16, 128)},
            warmup=1000,
        )
        assert {r.algorithm for r in records} == {"a", "b"}
        assert all(r.ledger.accesses == 3000 for r in records)

    def test_compare_algorithms_parallel_matches_serial(self):
        from repro.bench import diff_records, make_base_mm

        rng = np.random.default_rng(2)
        trace = rng.integers(0, 512, 4000)
        grid = {"a": make_base_mm(8, 128), "b": make_base_mm(16, 128)}
        serial = compare_algorithms(trace, grid, warmup=1000, jobs=1)
        parallel = compare_algorithms(trace, grid, warmup=1000, jobs=2)
        def as_payload(recs):
            return {"rows": [r.as_row() for r in recs]}

        assert diff_records(
            as_payload(serial), as_payload(parallel), key="algorithm"
        ) == []

    def test_epsilon_sweep_sorted(self):
        rng = np.random.default_rng(1)
        trace = rng.integers(0, 512, 3000)
        records = compare_algorithms(
            trace, {"small": BasePageMM(4, 128), "large": BasePageMM(64, 128)}
        )
        rows = epsilon_sweep(records, epsilons=[0.001, 0.1])
        assert len(rows) == 4
        assert rows[0]["epsilon"] == 0.001
        # within an epsilon, rows are sorted by cost
        assert rows[0]["cost"] <= rows[1]["cost"]


class TestSimulationTheoremExperiment:
    def test_eq3_holds_at_small_scale(self):
        wl = BimodalWorkload.paper_scaled(1 << 13)
        out = simulation_theorem_experiment(
            wl,
            ram_pages=wl.ram_pages,
            tlb_entries=32,
            n_accesses=20_000,
            seed=0,
        )
        z_rec = next(r for r in out["records"] if r.algorithm == "decoupled-Z")
        # eq. (3): C(Z) <= eps*C_TLB(X) + C_IO(Y) + slack
        eps = 0.01
        lhs = z_rec.cost(eps)
        rhs = eps * out["x_tlb_misses"] + out["y_ios"]
        slack = out["n_measured"] / (1 << 13)
        assert lhs <= rhs + slack + 1e-9

    def test_z_components_match_references_without_failures(self):
        wl = BimodalWorkload.paper_scaled(1 << 13)
        out = simulation_theorem_experiment(
            wl, ram_pages=wl.ram_pages, tlb_entries=32, n_accesses=20_000, seed=1
        )
        z_rec = next(r for r in out["records"] if r.algorithm == "decoupled-Z")
        if z_rec.ledger.paging_failures == 0:
            assert z_rec.ledger.tlb_misses == out["x_tlb_misses"]
            assert z_rec.ledger.ios == out["y_ios"]


class TestHybridSweep:
    def test_coverage_grows_with_chunk(self):
        wl = BimodalWorkload.paper_scaled(1 << 12)
        records = hybrid_sweep(
            wl, ram_pages=1 << 10, tlb_entries=16, n_accesses=8000, chunks=[1, 4, 16]
        )
        coverages = [r.params["coverage"] for r in records]
        assert coverages == sorted(coverages)
        assert coverages[0] < coverages[-1]


class TestReport:
    def test_format_table(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.0001}]
        out = format_table(rows)
        assert "a" in out and "b" in out
        assert "10" in out
        assert "1.000e-04" in out

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_ascii_chart_shape(self):
        out = ascii_log_chart([1, 2], [10, 1000], label="IOs")
        lines = out.splitlines()
        assert len(lines) == 3
        assert lines[2].count("#") > lines[1].count("#")

    def test_ascii_chart_validates(self):
        with pytest.raises(ValueError):
            ascii_log_chart([1], [1, 2])

    def test_format_figure1_includes_ratios(self):
        from repro.core import CostLedger
        from repro.sim import RunRecord

        records = [
            RunRecord("x", CostLedger(ios=10, tlb_misses=1000), {"h": 1}),
            RunRecord("x", CostLedger(ios=1000, tlb_misses=10), {"h": 64}),
        ]
        out = format_figure1(records, title="T")
        assert "T" in out
        assert "IO xh1" in out
        assert "100" in out  # the IO blow-up ratio
