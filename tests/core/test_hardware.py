"""Tests for hardware-derived epsilon profiles."""

import pytest

from repro.core.hardware import HDD, NVME_SSD, OPTANE, SATA_SSD, HardwareProfile


class TestHardwareProfile:
    def test_validation(self):
        with pytest.raises(ValueError):
            HardwareProfile("x", memory_latency_ns=0)
        with pytest.raises(ValueError):
            HardwareProfile("x", io_latency_ns=-1)
        with pytest.raises(ValueError):
            HardwareProfile("x", walk_levels=0)
        with pytest.raises(ValueError):
            HardwareProfile("x", pwc_hit_fraction=1.0)

    def test_walk_latency(self):
        p = HardwareProfile("x", memory_latency_ns=100, walk_levels=4,
                            pwc_hit_fraction=0.5)
        assert p.walk_latency_ns == 200.0

    def test_epsilon_in_unit_interval(self):
        for p in (HDD, SATA_SSD, NVME_SSD, OPTANE):
            assert 0 < p.epsilon < 1

    def test_faster_storage_larger_epsilon(self):
        """The paper's motivating trend."""
        assert HDD.epsilon < SATA_SSD.epsilon < NVME_SSD.epsilon < OPTANE.epsilon

    def test_virtualization_multiplies_epsilon(self):
        for p in (SATA_SSD, NVME_SSD):
            virt = p.virtualized()
            assert virt.epsilon > 4 * p.epsilon  # ~6x for 4+4 levels
            assert virt.name.endswith("+virt")

    def test_epsilon_clamped(self):
        extreme = HardwareProfile("x", memory_latency_ns=1e9, io_latency_ns=1.0)
        assert extreme.epsilon < 1.0
