"""Tests for the TLB value codec and the h_max arithmetic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TLBValueCodec, field_bits_for, hmax_for


class TestFieldBits:
    def test_small(self):
        assert field_bits_for(1) == 1  # present-at-slot-0 vs absent
        assert field_bits_for(2) == 2  # codes 0,1 plus absent -> 3 states
        assert field_bits_for(3) == 2

    def test_power_of_two_needs_extra_bit(self):
        # associativity 4 -> codes 0..3 plus absent = 5 states -> 3 bits
        assert field_bits_for(4) == 3
        assert field_bits_for(7) == 3

    def test_hmax_for(self):
        assert hmax_for(64, 7) == 64 // 3
        assert hmax_for(2, 1024) == 0  # field doesn't fit


class TestCodecConstruction:
    def test_width_enforced(self):
        with pytest.raises(ValueError, match="exceeds"):
            TLBValueCodec(w=16, hmax=9, field_bits=2)
        TLBValueCodec(w=16, hmax=8, field_bits=2)  # exactly fits

    def test_for_allocator(self):
        class FakeAlloc:
            associativity = 24  # needs 5 bits

        codec = TLBValueCodec.for_allocator(64, FakeAlloc())
        assert codec.field_bits == 5
        assert codec.hmax == 12

        codec2 = TLBValueCodec.for_allocator(64, FakeAlloc(), hmax=4)
        assert codec2.hmax == 4

    def test_for_allocator_infeasible(self):
        class HugeAlloc:
            associativity = 1 << 40

        with pytest.raises(ValueError, match="does not fit"):
            TLBValueCodec.for_allocator(8, HugeAlloc())


class TestFieldOps:
    def make(self):
        return TLBValueCodec(w=64, hmax=8, field_bits=4)  # max_code 14

    def test_empty_all_absent(self):
        codec = self.make()
        assert codec.decode(codec.empty) == [None] * 8

    def test_set_and_get(self):
        codec = self.make()
        v = codec.set_field(0, 3, 7)
        assert codec.field(v, 3) == 7
        assert all(codec.field(v, i) is None for i in range(8) if i != 3)

    def test_code_zero_is_not_absent(self):
        codec = self.make()
        v = codec.set_field(0, 0, 0)
        assert codec.field(v, 0) == 0

    def test_clear(self):
        codec = self.make()
        v = codec.set_field(0, 2, 5)
        v = codec.set_field(v, 4, 9)
        v = codec.clear_field(v, 2)
        assert codec.field(v, 2) is None
        assert codec.field(v, 4) == 9

    def test_overwrite(self):
        codec = self.make()
        v = codec.set_field(0, 1, 3)
        v = codec.set_field(v, 1, 10)
        assert codec.field(v, 1) == 10

    def test_code_range_checked(self):
        codec = self.make()
        with pytest.raises(ValueError):
            codec.set_field(0, 0, 15)  # 15 == 2^4 - 1 is reserved arithmetic
        with pytest.raises(ValueError):
            codec.set_field(0, 0, -1)

    def test_index_checked(self):
        codec = self.make()
        with pytest.raises(IndexError):
            codec.field(0, 8)
        with pytest.raises(IndexError):
            codec.set_field(0, -1, 0)

    def test_encode_decode_roundtrip(self):
        codec = self.make()
        fields = [None, 0, 5, None, 14, 1, None, 2]
        assert codec.decode(codec.encode(fields)) == fields

    def test_encode_wrong_length(self):
        codec = self.make()
        with pytest.raises(ValueError):
            codec.encode([None] * 7)

    def test_present_fields(self):
        codec = self.make()
        v = codec.encode([None, 4, None, None, 0, None, None, None])
        assert list(codec.present_fields(v)) == [(1, 4), (4, 0)]

    def test_value_fits_in_w_bits(self):
        codec = self.make()
        v = codec.encode([codec.max_code] * 8)
        assert 0 <= v < (1 << 64)


@st.composite
def field_lists(draw):
    codec_bits = draw(st.sampled_from([2, 3, 5]))
    hmax = draw(st.integers(1, 10))
    max_code = (1 << codec_bits) - 2
    fields = draw(
        st.lists(
            st.one_of(st.none(), st.integers(0, max_code)),
            min_size=hmax,
            max_size=hmax,
        )
    )
    return codec_bits, hmax, fields


class TestCodecProperties:
    @given(field_lists())
    @settings(max_examples=80)
    def test_roundtrip_property(self, case):
        bits, hmax, fields = case
        codec = TLBValueCodec(w=bits * hmax, hmax=hmax, field_bits=bits)
        assert codec.decode(codec.encode(fields)) == fields

    @given(field_lists(), st.data())
    @settings(max_examples=80)
    def test_field_independence(self, case, data):
        """Setting one field never disturbs the others."""
        bits, hmax, fields = case
        codec = TLBValueCodec(w=bits * hmax, hmax=hmax, field_bits=bits)
        v = codec.encode(fields)
        i = data.draw(st.integers(0, hmax - 1))
        code = data.draw(st.integers(0, codec.max_code))
        v2 = codec.set_field(v, i, code)
        expected = list(fields)
        expected[i] = code
        assert codec.decode(v2) == expected
