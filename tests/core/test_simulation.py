"""Tests for the Simulation Theorem construction Z (Theorem 4) and the
Lemma 1 separation utilities."""

import numpy as np
import pytest

from repro.core import (
    ATCostModel,
    DecoupledSystem,
    DecouplingScheme,
    IcebergAllocator,
    TLBValueCodec,
    huge_page_trace,
    optimal_ios,
    optimal_tlb_misses,
    paging_faults,
    theorem3_parameters,
    build_allocator,
)
from repro.paging import FIFOPolicy, LRUPolicy


def make_system(
    frames=256, n_buckets=32, tlb_entries=8, ram_capacity=None, hmax=None, seed=0
):
    allocator = IcebergAllocator(frames, n_buckets, lam=frames / n_buckets / 2, seed=seed)
    codec = TLBValueCodec.for_allocator(64, allocator, hmax=hmax)
    scheme = DecouplingScheme(allocator, codec)
    if ram_capacity is None:
        ram_capacity = int(frames * 0.8)
    return DecoupledSystem(tlb_entries, ram_capacity, LRUPolicy(), LRUPolicy(), scheme)


class TestConstruction:
    def test_ram_capacity_must_fit(self):
        with pytest.raises(ValueError, match="exceeds physical frames"):
            make_system(frames=256, ram_capacity=500)


class TestServicing:
    def test_single_access_costs(self):
        z = make_system()
        z.access(5)
        assert z.ledger.accesses == 1
        assert z.ledger.tlb_misses == 1  # cold TLB
        assert z.ledger.ios == 1  # cold RAM
        assert z.ledger.tlb_hits == 0

    def test_repeat_access_is_free(self):
        z = make_system()
        z.access(5)
        z.access(5)
        assert z.ledger.tlb_hits == 1
        assert z.ledger.ios == 1  # no second IO

    def test_huge_page_locality_saves_tlb_misses(self):
        """Accesses within one huge page share a single TLB fill."""
        z = make_system()
        hmax = z.hmax
        assert hmax >= 2
        for vpn in range(hmax):
            z.access(vpn)
        assert z.ledger.tlb_misses == 1
        assert z.ledger.ios == hmax  # but each base page faults once

    def test_invariants_after_random_run(self):
        z = make_system()
        rng = np.random.default_rng(0)
        for vpn in rng.integers(0, 600, 3000):
            z.access(int(vpn))
        z.check_invariants()

    def test_run_returns_ledger(self):
        z = make_system()
        ledger = z.run([1, 2, 3, 1])
        assert ledger is z.ledger
        assert ledger.accesses == 4

    def test_tlb_decode_matches_ram(self):
        """After servicing, the TLB entry actually decodes the page to its
        frame (the end-to-end eq. 4 path through real components)."""
        z = make_system()
        z.access(10)
        frame = z.scheme.frame_of(10)
        hpn = 10 // z.hmax
        stored = z.tlb.peek(hpn)
        assert z.scheme.f(10, stored) == frame


class TestPagingFailureServicing:
    def make_failing_system(self):
        # brutal: 4 frames in 4 buckets of 1, one-choice-like pressure via
        # iceberg with lam<1 — failures are common.
        allocator = IcebergAllocator(4, 4, lam=1.0, front_slack=0.0, seed=3)
        codec = TLBValueCodec.for_allocator(64, allocator)
        scheme = DecouplingScheme(allocator, codec)
        return DecoupledSystem(8, 4, LRUPolicy(), LRUPolicy(), scheme)

    def test_failure_costs_one_plus_epsilon(self):
        z = self.make_failing_system()
        rng = np.random.default_rng(1)
        for vpn in rng.integers(0, 64, 500):
            z.access(int(vpn))
        # failures occurred and each was charged an IO and a decoding miss
        assert z.ledger.paging_failures > 0
        assert z.ledger.decoding_misses == z.ledger.paging_failures

    def test_failed_page_repeat_access_keeps_paying(self):
        z = self.make_failing_system()
        # fill until some page fails
        failed = None
        for vpn in range(64):
            z.access(vpn)
            if z.scheme.failure_set:
                failed = next(iter(z.scheme.failure_set))
                break
        assert failed is not None
        before = z.ledger.ios
        z.access(failed)  # RAM hit in Y, but D is failing it
        assert z.ledger.ios == before + 1

    def test_invariants_hold_under_failures(self):
        z = self.make_failing_system()
        rng = np.random.default_rng(2)
        for vpn in rng.integers(0, 64, 400):
            z.access(int(vpn))
        z.check_invariants()


class TestSeparation:
    def test_huge_page_trace(self):
        np.testing.assert_array_equal(
            huge_page_trace([0, 7, 8, 15, 16], 8), [0, 0, 1, 1, 2]
        )

    def test_optimal_bounds_online_policies(self):
        rng = np.random.default_rng(3)
        trace = rng.integers(0, 100, 2000).tolist()
        opt = optimal_ios(trace, 32)
        assert opt <= paging_faults(trace, 32, LRUPolicy())
        assert opt <= paging_faults(trace, 32, FIFOPolicy())

    def test_optimal_tlb_misses_smaller_with_bigger_pages(self):
        rng = np.random.default_rng(4)
        # sequential-ish trace: huge pages help a lot
        trace = np.repeat(np.arange(200), 4) + rng.integers(0, 2, 800)
        m1 = optimal_tlb_misses(trace, 8, 1)
        m16 = optimal_tlb_misses(trace, 8, 16)
        assert m16 < m1


class TestEq3EndToEnd:
    """The headline guarantee at small scale: C(Z) is within the theorem's
    budget of C_TLB(X) + C_IO(Y) computed on the same trace."""

    def test_cost_inequality(self):
        P, w = 1 << 12, 64
        params = theorem3_parameters(P, w)
        allocator = build_allocator(params, seed=7)
        codec = TLBValueCodec(w, params.hmax, params.field_bits)
        scheme = DecouplingScheme(allocator, codec)
        ell = 16
        m = params.max_pages

        rng = np.random.default_rng(8)
        # zipf-flavoured trace over 4m pages
        trace = (rng.zipf(1.2, 20_000) % (4 * m)).astype(np.int64)

        z = DecoupledSystem(ell, m, LRUPolicy(), LRUPolicy(), scheme)
        ledger = z.run(trace)

        # X: LRU over huge pages with ℓ entries; Y: LRU over pages with m frames
        x_misses = paging_faults(huge_page_trace(trace, params.hmax), ell, LRUPolicy())
        y_ios = paging_faults(trace, m, LRUPolicy())

        model = ATCostModel(epsilon=0.01)
        slack = len(trace) / P  # the n/poly(P) term, generously poly = P^1
        assert model.cost(ledger) <= model.epsilon * x_misses + y_ios + slack + 1e-9

        # and Z's components match X and Y exactly when there are no failures
        if ledger.paging_failures == 0:
            assert ledger.tlb_misses == x_misses
            assert ledger.ios == y_ios
