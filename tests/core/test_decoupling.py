"""Tests for the huge-page decoupling scheme: the eq. (4) guarantee, the
failure-set semantics, and constant-time ψ bookkeeping."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    NOT_PRESENT,
    DecouplingScheme,
    IcebergAllocator,
    OneChoiceAllocator,
    TLBValueCodec,
)


def make_scheme(allocator=None, hmax=None, on_update=None):
    if allocator is None:
        allocator = IcebergAllocator(64, 8, lam=4.0, seed=0)
    codec = TLBValueCodec.for_allocator(64, allocator, hmax=hmax)
    return DecouplingScheme(allocator, codec, on_update)


class TestConstruction:
    def test_codec_must_cover_associativity(self):
        allocator = IcebergAllocator(64, 8, lam=4.0, seed=0)  # assoc 24
        tiny = TLBValueCodec(w=64, hmax=8, field_bits=3)  # max code 6
        with pytest.raises(ValueError, match="cannot address"):
            DecouplingScheme(allocator, tiny)

    def test_hmax_comes_from_codec(self):
        scheme = make_scheme(hmax=4)
        assert scheme.hmax == 4


class TestRamEvents:
    def test_insert_and_decode(self):
        scheme = make_scheme()
        frame = scheme.ram_insert(10)
        assert frame is not None
        assert scheme.frame_of(10) == frame
        hpn = 10 // scheme.hmax
        assert scheme.f(10, scheme.psi(hpn)) == frame

    def test_double_insert_raises(self):
        scheme = make_scheme()
        scheme.ram_insert(1)
        with pytest.raises(ValueError):
            scheme.ram_insert(1)

    def test_evict_clears_psi(self):
        scheme = make_scheme()
        scheme.ram_insert(10)
        scheme.ram_evict(10)
        hpn = 10 // scheme.hmax
        assert scheme.f(10, scheme.psi(hpn)) == NOT_PRESENT
        assert 10 not in scheme.active_set

    def test_evict_absent_raises(self):
        scheme = make_scheme()
        with pytest.raises(KeyError):
            scheme.ram_evict(10)

    def test_eq4_guarantee(self):
        """Eq. (4): present pages decode to φ(v); absent pages to -1."""
        scheme = make_scheme()
        placed = {}
        for v in range(30):
            f = scheme.ram_insert(v)
            if f is not None:
                placed[v] = f
        for hpn in {v // scheme.hmax for v in range(30)}:
            value = scheme.psi(hpn)
            for idx in range(scheme.hmax):
                v = hpn * scheme.hmax + idx
                decoded = scheme.f(v, value)
                if v in placed:
                    assert decoded == placed[v]
                else:
                    assert decoded == NOT_PRESENT


class TestFailures:
    def make_tight(self):
        # 2 buckets x 2 frames, one hash: failures arrive quickly
        return make_scheme(OneChoiceAllocator(4, 2, seed=0))

    def test_failed_page_in_active_and_failure_sets(self):
        scheme = self.make_tight()
        failed = None
        for v in range(20):
            if scheme.ram_insert(v) is None:
                failed = v
                break
        assert failed is not None
        assert scheme.is_failed(failed)
        assert failed in scheme.active_set
        assert failed in scheme.failure_set
        assert scheme.frame_of(failed) is None

    def test_failed_page_decodes_to_not_present(self):
        scheme = self.make_tight()
        failed = next(v for v in range(20) if scheme.ram_insert(v) is None)
        hpn = failed // scheme.hmax
        assert scheme.f(failed, scheme.psi(hpn)) == NOT_PRESENT

    def test_failure_ends_on_eviction(self):
        scheme = self.make_tight()
        failed = next(v for v in range(20) if scheme.ram_insert(v) is None)
        scheme.ram_evict(failed)
        assert not scheme.is_failed(failed)
        assert failed not in scheme.active_set

    def test_f_subset_of_a_invariant(self):
        scheme = self.make_tight()
        for v in range(20):
            scheme.ram_insert(v)
        scheme.check_invariants()


class TestTlbEvents:
    def test_insert_returns_current_psi(self):
        scheme = make_scheme()
        scheme.ram_insert(0)
        hpn = 0
        value = scheme.tlb_insert(hpn)
        assert value == scheme.psi(hpn)
        assert hpn in scheme.tlb_set

    def test_double_insert_raises(self):
        scheme = make_scheme()
        scheme.tlb_insert(0)
        with pytest.raises(ValueError):
            scheme.tlb_insert(0)

    def test_evict(self):
        scheme = make_scheme()
        scheme.tlb_insert(0)
        scheme.tlb_evict(0)
        assert 0 not in scheme.tlb_set
        with pytest.raises(KeyError):
            scheme.tlb_evict(0)

    def test_decode_requires_tlb_residency(self):
        scheme = make_scheme()
        scheme.ram_insert(0)
        with pytest.raises(LookupError):
            scheme.decode(0)
        scheme.tlb_insert(0)
        assert scheme.decode(0) == scheme.frame_of(0)

    def test_value_update_callback_fires_for_resident_entries(self):
        updates = []
        scheme = make_scheme(on_update=lambda h, v: updates.append((h, v)))
        scheme.tlb_insert(0)
        scheme.ram_insert(1)  # page 1 is inside huge page 0
        assert updates and updates[-1][0] == 0
        assert updates[-1][1] == scheme.psi(0)

    def test_no_callback_for_nonresident_entries(self):
        updates = []
        scheme = make_scheme(on_update=lambda h, v: updates.append((h, v)))
        scheme.ram_insert(1)  # huge page 0 not in T
        assert updates == []


class TestDecouplingProperty:
    @given(st.lists(st.tuples(st.booleans(), st.integers(0, 63)), max_size=250))
    @settings(max_examples=40)
    def test_invariants_under_arbitrary_policy(self, ops):
        """Any oblivious RAM-replacement behaviour keeps eq. (4) + inject."""
        scheme = make_scheme(IcebergAllocator(32, 4, lam=4.0, seed=9))
        active = set()
        for insert, v in ops:
            if insert and v not in active:
                scheme.ram_insert(v)
                active.add(v)
            elif not insert and v in active:
                scheme.ram_evict(v)
                active.remove(v)
        assert scheme.active_set == frozenset(active)
        scheme.check_invariants()


class TestApplyEvents:
    """`apply_events` must leave ψ/A/F exactly where the per-event
    `ram_evict`/`ram_insert` sequence would, in one folded pass."""

    def _streams(self, seed):
        import random

        rng = random.Random(seed)
        gen = make_scheme(IcebergAllocator(64, 8, lam=4.0, seed=seed))
        warm = []
        for vpn in range(48):
            if gen.ram_insert(vpn) is not None:
                warm.append(vpn)
            else:
                gen.ram_evict(vpn)  # keep the generator failure-free
        inserts, evicts = [], []
        first_evt = rng.choice([0, 3])
        vpn = 1000
        for k in range(50):
            if k >= first_evt:
                victim = rng.choice(sorted(gen._active))
                gen.ram_evict(victim)
                evicts.append(victim)
            inserts.append(vpn)
            if gen.ram_insert(vpn) is None:
                vpn += 1
                break
            vpn += 1
        return warm, inserts, evicts, first_evt

    @staticmethod
    def _state(scheme):
        return (
            dict(scheme._psi),
            set(scheme._active),
            set(scheme._failed),
            dict(scheme.allocator._frame_of),
        )

    def test_matches_per_event_sequence(self):
        for seed in range(6):
            warm, inserts, evicts, first_evt = self._streams(seed)
            ref = make_scheme(IcebergAllocator(64, 8, lam=4.0, seed=seed))
            bat = make_scheme(IcebergAllocator(64, 8, lam=4.0, seed=seed))
            for s in (ref, bat):
                for vpn in warm:
                    s.ram_insert(vpn)
            ref_failed = -1
            j = 0
            for k, vpn in enumerate(inserts):
                if k >= first_evt:
                    ref.ram_evict(evicts[j])
                    j += 1
                if ref.ram_insert(vpn) is None:
                    ref_failed = k
                    break
            failed = bat.apply_events(inserts, evicts, first_evt)
            assert failed == ref_failed
            assert self._state(bat) == self._state(ref)
            bat.check_invariants()

    def test_declines_with_pre_existing_failures(self):
        scheme = make_scheme()
        scheme._failed.add(7)
        scheme._active.add(7)
        assert scheme.apply_events([1], [], 1) is None

    def test_declines_without_bulk_allocator(self):
        from repro.core import FullyAssociativeAllocator

        alloc = FullyAssociativeAllocator(64)
        codec = TLBValueCodec.for_allocator(64, alloc, hmax=4)
        scheme = DecouplingScheme(alloc, codec)
        assert scheme.apply_events([1], [], 1) is None

    def test_callbacks_suppressed_but_restored(self):
        fired = []
        scheme = make_scheme(on_update=lambda hpn, value: fired.append(hpn))
        scheme.tlb_insert(0)
        assert scheme.apply_events([1, 2], [], 2) == -1
        assert fired == []  # batch path never notifies
        scheme.ram_insert(3)  # per-event path still does
        assert scheme.on_value_update is not None
        assert fired
