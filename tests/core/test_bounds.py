"""Tests for the theorem parameter calculators (eqs. 1-2, Theorems 1/3)."""

import math

import pytest

from repro.core import (
    build_allocator,
    greedy_parameters,
    hmax_upper_bound,
    theorem1_parameters,
    theorem3_parameters,
)


class TestHmaxUpperBound:
    def test_eq1(self):
        assert hmax_upper_bound(64) == 64
        with pytest.raises(ValueError):
            hmax_upper_bound(0)


class TestTheorem1Parameters:
    def test_shape(self):
        P, w = 1 << 20, 64
        p = theorem1_parameters(P, w)
        assert p.scheme == "one-choice"
        assert p.frames_used == p.n_buckets * p.bucket_size
        assert p.frames_used <= P
        # λ = log P · log log P
        assert p.lam == pytest.approx(math.log(P) * math.log(math.log(P)), rel=1e-6)
        assert 0 < p.delta < 1
        assert p.bucket_size >= p.lam  # room above the average load
        assert p.associativity == p.bucket_size
        assert p.hmax >= 1
        assert p.max_pages <= p.frames_used

    def test_hmax_scales_with_w(self):
        P = 1 << 20
        assert theorem1_parameters(P, 128).hmax >= 2 * theorem1_parameters(P, 64).hmax - 1

    def test_hmax_theta_w_over_loglog(self):
        """h_max·field_bits ≈ w, with field_bits = Θ(log log P)."""
        P, w = 1 << 24, 256
        p = theorem1_parameters(P, w)
        assert p.field_bits <= 4 * math.log(math.log(P))
        assert p.hmax == w // p.field_bits


class TestTheorem3Parameters:
    def test_shape(self):
        P, w = 1 << 20, 64
        p = theorem3_parameters(P, w)
        assert p.scheme == "iceberg"
        assert p.frames_used == p.n_buckets * p.bucket_size
        assert p.associativity == 3 * p.bucket_size
        assert p.hmax >= 1

    def test_smaller_buckets_than_theorem1(self):
        """The whole point of Iceberg: Θ̃(log log P) ≪ Θ̃(log P) buckets."""
        P, w = 1 << 24, 64
        t1 = theorem1_parameters(P, w)
        t3 = theorem3_parameters(P, w)
        assert t3.bucket_size < t1.bucket_size

    def test_larger_hmax_than_theorem1(self):
        """Eq. (2): Θ(w/log log log P) beats Θ(w/log log P)."""
        P, w = 1 << 30, 256
        assert theorem3_parameters(P, w).hmax > theorem1_parameters(P, w).hmax

    def test_hmax_never_exceeds_eq1_bound(self):
        for P in (1 << 12, 1 << 20, 1 << 30):
            for w in (16, 64, 256):
                assert theorem1_parameters(P, w).hmax <= hmax_upper_bound(w)
                assert theorem3_parameters(P, w).hmax <= hmax_upper_bound(w)

    def test_delta_shrinks_with_p(self):
        """δ = o(1): resource augmentation vanishes as P grows."""
        w = 64
        deltas = [theorem3_parameters(1 << k, w).delta for k in (16, 32, 48)]
        assert deltas[0] >= deltas[-1] - 1e-9


class TestGreedyParameters:
    def test_constant_delta(self):
        """Greedy's Ω(λ) gap shows up as δ = Ω(1) — roughly half of RAM."""
        p = greedy_parameters(1 << 24, 64)
        assert p.delta >= 0.5

    def test_scheme_label(self):
        assert greedy_parameters(1 << 16, 64).scheme == "greedy"


class TestBuildAllocator:
    @pytest.mark.parametrize(
        "params_fn", [theorem1_parameters, theorem3_parameters, greedy_parameters]
    )
    def test_builds_matching_allocator(self, params_fn):
        p = params_fn(1 << 14, 64)
        alloc = build_allocator(p, seed=0)
        assert alloc.total_frames == p.frames_used
        assert alloc.associativity == p.associativity
        # the codec arithmetic in SchemeParameters matches the allocator
        from repro.core import field_bits_for

        assert field_bits_for(alloc.associativity) == p.field_bits

    def test_unknown_scheme(self):
        from repro.core import SchemeParameters

        bogus = SchemeParameters(
            scheme="bogus", total_frames=1, frames_used=1, n_buckets=1,
            bucket_size=1, lam=1.0, delta=0.1, associativity=1, field_bits=1,
            hmax=1, w=1,
        )
        with pytest.raises(ValueError):
            build_allocator(bogus)

    def test_theorem3_allocator_no_failures_at_max_pages(self):
        """The operational content of Theorem 3 at small scale: filling to
        (1-δ)·P and churning produces no paging failures."""
        p = theorem3_parameters(1 << 14, 64)
        alloc = build_allocator(p, seed=1)
        m = p.max_pages
        for v in range(m):
            alloc.allocate(v)
        assert alloc.failures == 0, "failure during initial fill"
        oldest, fresh = 0, m
        for _ in range(2 * m):  # FIFO churn at full occupancy
            if alloc.frame_of(oldest) is not None:
                alloc.free(oldest)
            oldest += 1
            alloc.allocate(fresh)
            fresh += 1
        assert alloc.failures == 0
