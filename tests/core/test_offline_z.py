"""Theorem 4 with offline ingredients: Z built from Belady's OPT.

The theorem allows arbitrary X and Y, online or offline; with OPT as both,
Z realizes the *optimal* eq. (3) right-hand side. These tests run the full
construction with offline policies and check dominance over online Z.
"""

import numpy as np
import pytest

from repro.core import (
    ATCostModel,
    DecoupledSystem,
    DecouplingScheme,
    IcebergAllocator,
    TLBValueCodec,
    huge_page_trace,
    optimal_faults,
)
from repro.paging import BeladyOPT, LRUPolicy


def build(trace, frames=256, tlb_entries=8, ram_capacity=160, offline=True, seed=0):
    # 16 buckets of 16 frames at 62% occupancy (δ = 0.375): enough slack
    # that the zipf fixture churns failure-free, so the OPT-count
    # identities hold exactly.
    allocator = IcebergAllocator(frames, 16, lam=10.0, seed=seed)
    codec = TLBValueCodec.for_allocator(64, allocator)
    scheme = DecouplingScheme(allocator, codec)
    if offline:
        hp = huge_page_trace(trace, codec.hmax).tolist()
        tlb_policy = BeladyOPT(hp)
        ram_policy = BeladyOPT([int(p) for p in trace])
    else:
        tlb_policy, ram_policy = LRUPolicy(), LRUPolicy()
    return DecoupledSystem(tlb_entries, ram_capacity, tlb_policy, ram_policy, scheme)


@pytest.fixture
def trace():
    rng = np.random.default_rng(0)
    return (rng.zipf(1.2, 8000) % 700).tolist()


class TestOfflineZ:
    def test_runs_and_keeps_invariants(self, trace):
        z = build(trace)
        z.run(trace)
        z.check_invariants()

    def test_offline_components_match_opt_counts(self, trace):
        z = build(trace)
        z.run(trace)
        if z.ledger.paging_failures:
            pytest.skip("failure term obscures the identity at this size")
        hp = huge_page_trace(trace, z.hmax).tolist()
        assert z.ledger.tlb_misses == optimal_faults(hp, z.tlb.entries)
        assert z.ledger.ios == optimal_faults(trace, z.ram.capacity)

    def test_offline_dominates_online(self, trace):
        online = build(trace, offline=False)
        offline = build(trace, offline=True)
        online.run(trace)
        offline.run(trace)
        model = ATCostModel(epsilon=0.01)
        slack = 0.01 * (online.ledger.paging_failures + offline.ledger.paging_failures + 1)
        assert model.cost(offline.ledger) <= model.cost(online.ledger) + slack

    def test_offline_tlb_online_ram_mix(self, trace):
        """The theorem permits mixing: offline X with online Y."""
        allocator = IcebergAllocator(256, 32, lam=4.0, seed=1)
        codec = TLBValueCodec.for_allocator(64, allocator)
        hp = huge_page_trace(trace, codec.hmax).tolist()
        z = DecoupledSystem(
            8, 192, BeladyOPT(hp), LRUPolicy(), DecouplingScheme(allocator, codec)
        )
        z.run(trace)
        z.check_invariants()
        online = build(trace, offline=False, seed=1)
        online.run(trace)
        assert z.ledger.tlb_misses <= online.ledger.tlb_misses
