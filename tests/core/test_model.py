"""Tests for the address-translation cost model."""

import pytest

from repro.core import ATCostModel, CostLedger


class TestATCostModel:
    def test_epsilon_validated(self):
        with pytest.raises(ValueError):
            ATCostModel(epsilon=0.0)
        with pytest.raises(ValueError):
            ATCostModel(epsilon=1.0)
        with pytest.raises(ValueError):
            ATCostModel(epsilon=0.5, io_cost=0)

    def test_total_cost_decomposition(self):
        model = ATCostModel(epsilon=0.1)
        ledger = CostLedger(ios=10, tlb_misses=100, decoding_misses=5)
        assert model.io_cost_of(ledger) == 10.0
        assert model.tlb_cost(ledger) == pytest.approx(10.0)
        assert model.decoding_cost(ledger) == pytest.approx(0.5)
        assert model.cost(ledger) == pytest.approx(20.5)

    def test_hits_and_evictions_are_free(self):
        model = ATCostModel(epsilon=0.5)
        ledger = CostLedger(accesses=1000, tlb_hits=1000)
        assert model.cost(ledger) == 0.0

    def test_custom_io_cost(self):
        model = ATCostModel(epsilon=0.1, io_cost=2.0)
        assert model.cost(CostLedger(ios=3)) == 6.0

    def test_frozen(self):
        model = ATCostModel()
        with pytest.raises(AttributeError):
            model.epsilon = 0.2


class TestCostLedger:
    def test_defaults_zero(self):
        ledger = CostLedger()
        assert ledger.ios == 0 and ledger.tlb_misses == 0
        assert ledger.tlb_miss_rate == 0.0

    def test_miss_rate(self):
        ledger = CostLedger(tlb_hits=75, tlb_misses=25)
        assert ledger.tlb_miss_rate == 0.25

    def test_merge(self):
        a = CostLedger(accesses=10, ios=1, tlb_misses=2, extra={"x": 1})
        b = CostLedger(accesses=5, ios=3, tlb_hits=4, extra={"x": 2, "y": 9})
        m = a.merge(b)
        assert m.accesses == 15 and m.ios == 4
        assert m.tlb_misses == 2 and m.tlb_hits == 4
        assert m.extra == {"x": 3, "y": 9}
        # originals untouched
        assert a.ios == 1 and b.ios == 3

    def test_reset(self):
        ledger = CostLedger(accesses=5, ios=2, extra={"k": 1})
        ledger.reset()
        assert ledger.accesses == 0 and ledger.ios == 0 and ledger.extra == {}

    def test_as_dict(self):
        d = CostLedger(ios=2, paging_failures=1, extra={"h": 8}).as_dict()
        assert d["ios"] == 2
        assert d["paging_failures"] == 1
        assert d["h"] == 8
