"""Tests for the ledger → wall-time estimator."""

import pytest

from repro.core import CostLedger
from repro.core.hardware import NVME_SSD, OPTANE, HardwareProfile, estimate_runtime_ns


class TestEstimateRuntime:
    def test_components_add(self):
        profile = HardwareProfile("x", memory_latency_ns=100, io_latency_ns=1000,
                                  walk_levels=4, pwc_hit_fraction=0.0)
        ledger = CostLedger(accesses=10, ios=2, tlb_misses=3, decoding_misses=1)
        t = estimate_runtime_ns(ledger, profile, base_access_ns=1.0)
        assert t == pytest.approx(10 * 1.0 + 4 * 400.0 + 2 * 1000.0)

    def test_empty_ledger_is_zero(self):
        assert estimate_runtime_ns(CostLedger(), NVME_SSD) == 0.0

    def test_faster_storage_shrinks_io_share(self):
        ledger = CostLedger(accesses=1000, ios=100, tlb_misses=1000)
        t_nvme = estimate_runtime_ns(ledger, NVME_SSD)
        t_optane = estimate_runtime_ns(ledger, OPTANE)
        assert t_optane < t_nvme
        # translation share grows as storage speeds up
        walk = NVME_SSD.walk_latency_ns * 1000
        assert walk / t_optane > walk / t_nvme
