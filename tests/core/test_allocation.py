"""Tests for the RAM-allocation schemes: stability, injectivity, encoding
round-trips, and the paging-failure semantics of Sections 3-4."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    FullyAssociativeAllocator,
    GreedyAllocator,
    IcebergAllocator,
    OneChoiceAllocator,
)

ALLOCATOR_FACTORIES = {
    "full": lambda: FullyAssociativeAllocator(64),
    "one-choice": lambda: OneChoiceAllocator(64, 8, seed=0),
    "greedy": lambda: GreedyAllocator(64, 8, seed=0),
    "iceberg": lambda: IcebergAllocator(64, 8, lam=4.0, seed=0),
}


@pytest.fixture(params=sorted(ALLOCATOR_FACTORIES))
def allocator(request):
    return ALLOCATOR_FACTORIES[request.param]()


class TestAllocatorContract:
    def test_allocate_returns_valid_frame(self, allocator):
        frame = allocator.allocate(1)
        assert frame is not None
        assert 0 <= frame < allocator.total_frames
        assert allocator.frame_of(1) == frame
        assert len(allocator) == 1

    def test_double_allocate_raises(self, allocator):
        allocator.allocate(1)
        with pytest.raises(ValueError):
            allocator.allocate(1)

    def test_free_releases(self, allocator):
        frame = allocator.allocate(1)
        assert allocator.free(1) == frame
        assert allocator.frame_of(1) is None
        assert len(allocator) == 0

    def test_free_absent_raises(self, allocator):
        with pytest.raises(KeyError):
            allocator.free(1)

    def test_injectivity_under_churn(self, allocator):
        """φ must always be an injection."""
        frames = {}
        vpn = 0
        for round_ in range(6):
            for _ in range(10):
                f = allocator.allocate(vpn)
                if f is not None:
                    assert f not in frames.values(), "frame double-assigned"
                    frames[vpn] = f
                vpn += 1
            for victim in list(frames)[:5]:
                allocator.free(victim)
                del frames[victim]

    def test_stability(self, allocator):
        """φ(v) never changes while v is resident."""
        allocator.allocate(7)
        before = allocator.frame_of(7)
        for v in range(20, 40):
            allocator.allocate(v)
        for v in range(20, 30):
            allocator.free(v)
        assert allocator.frame_of(7) == before

    def test_encode_decode_roundtrip(self, allocator):
        placed = []
        for v in range(40):
            if allocator.allocate(v) is not None:
                placed.append(v)
        for v in placed:
            code = allocator.encode(v)
            assert 0 <= code < (1 << allocator.address_bits)
            assert allocator.decode(v, code) == allocator.frame_of(v)

    def test_decode_range_checked(self, allocator):
        allocator.allocate(1)
        with pytest.raises(ValueError):
            allocator.decode(1, allocator.associativity)


class TestFullyAssociative:
    def test_associativity_is_p(self):
        a = FullyAssociativeAllocator(128)
        assert a.associativity == 128
        assert a.address_bits == 7

    def test_no_failures_until_truly_full(self):
        a = FullyAssociativeAllocator(8)
        for v in range(8):
            assert a.allocate(v) is not None
        assert a.allocate(99) is None  # physically full
        a.free(0)
        assert a.allocate(99) is not None

    def test_frames_are_distinct(self):
        a = FullyAssociativeAllocator(16)
        frames = {a.allocate(v) for v in range(16)}
        assert frames == set(range(16))


class TestBucketedGeometry:
    def test_divisibility_enforced(self):
        with pytest.raises(ValueError, match="divisible"):
            OneChoiceAllocator(65, 8)

    def test_bucket_size_and_associativity(self):
        a = OneChoiceAllocator(64, 8, seed=0)
        assert a.bucket_size == 8
        assert a.associativity == 8
        assert a.address_bits == 3

        g = GreedyAllocator(64, 8, d=2, seed=0)
        assert g.associativity == 16
        assert g.address_bits == 4

        i = IcebergAllocator(64, 8, lam=4.0, seed=0)
        assert i.associativity == 24
        assert i.address_bits == 5

    def test_frame_lies_in_a_candidate_bucket(self):
        a = IcebergAllocator(64, 8, lam=4.0, seed=1)
        for v in range(40):
            frame = a.allocate(v)
            if frame is None:
                continue
            bucket = frame // a.bucket_size
            assert bucket in a.strategy.candidates(v)

    def test_failure_when_candidates_full(self):
        # 2 buckets of 2 frames, one choice: ~ collisions guaranteed
        a = OneChoiceAllocator(4, 2, seed=0)
        failures_before = a.failures
        outcomes = [a.allocate(v) for v in range(12)]
        assert None in outcomes
        assert a.failures > failures_before
        assert len(a) == sum(1 for o in outcomes if o is not None)

    def test_failed_page_not_resident(self):
        a = OneChoiceAllocator(2, 2, seed=0)
        results = {v: a.allocate(v) for v in range(10)}
        failed = [v for v, f in results.items() if f is None]
        assert failed, "expected at least one failure at this density"
        v = failed[0]
        assert a.frame_of(v) is None
        with pytest.raises(KeyError):
            a.free(v)

    def test_slot_reuse_within_bucket(self):
        a = OneChoiceAllocator(8, 1, seed=0)  # single bucket of 8
        frames = [a.allocate(v) for v in range(8)]
        assert sorted(frames) == list(range(8))
        a.free(3)
        new = a.allocate(100)
        assert new == frames[3]  # freed slot reused

    def test_max_bucket_load_bounded(self):
        a = IcebergAllocator(64, 8, lam=4.0, seed=2)
        for v in range(64):
            a.allocate(v)
        assert a.max_bucket_load <= a.bucket_size


class TestAllocatorProperties:
    @given(st.lists(st.tuples(st.booleans(), st.integers(0, 63)), max_size=300))
    @settings(max_examples=40)
    def test_iceberg_invariants_under_arbitrary_churn(self, ops):
        a = IcebergAllocator(64, 8, lam=4.0, seed=5)
        resident: dict[int, int] = {}
        for insert, v in ops:
            if insert and v not in resident:
                f = a.allocate(v)
                if f is not None:
                    resident[v] = f
            elif not insert and v in resident:
                a.free(v)
                del resident[v]
        # injectivity + stability + decode agreement, all at once
        assert len(set(resident.values())) == len(resident)
        for v, f in resident.items():
            assert a.frame_of(v) == f
            assert a.decode(v, a.encode(v)) == f
