"""Tests for the RAM-allocation schemes: stability, injectivity, encoding
round-trips, and the paging-failure semantics of Sections 3-4."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    FullyAssociativeAllocator,
    GreedyAllocator,
    IcebergAllocator,
    OneChoiceAllocator,
)

ALLOCATOR_FACTORIES = {
    "full": lambda: FullyAssociativeAllocator(64),
    "one-choice": lambda: OneChoiceAllocator(64, 8, seed=0),
    "greedy": lambda: GreedyAllocator(64, 8, seed=0),
    "iceberg": lambda: IcebergAllocator(64, 8, lam=4.0, seed=0),
}


@pytest.fixture(params=sorted(ALLOCATOR_FACTORIES))
def allocator(request):
    return ALLOCATOR_FACTORIES[request.param]()


class TestAllocatorContract:
    def test_allocate_returns_valid_frame(self, allocator):
        frame = allocator.allocate(1)
        assert frame is not None
        assert 0 <= frame < allocator.total_frames
        assert allocator.frame_of(1) == frame
        assert len(allocator) == 1

    def test_double_allocate_raises(self, allocator):
        allocator.allocate(1)
        with pytest.raises(ValueError):
            allocator.allocate(1)

    def test_free_releases(self, allocator):
        frame = allocator.allocate(1)
        assert allocator.free(1) == frame
        assert allocator.frame_of(1) is None
        assert len(allocator) == 0

    def test_free_absent_raises(self, allocator):
        with pytest.raises(KeyError):
            allocator.free(1)

    def test_injectivity_under_churn(self, allocator):
        """φ must always be an injection."""
        frames = {}
        vpn = 0
        for round_ in range(6):
            for _ in range(10):
                f = allocator.allocate(vpn)
                if f is not None:
                    assert f not in frames.values(), "frame double-assigned"
                    frames[vpn] = f
                vpn += 1
            for victim in list(frames)[:5]:
                allocator.free(victim)
                del frames[victim]

    def test_stability(self, allocator):
        """φ(v) never changes while v is resident."""
        allocator.allocate(7)
        before = allocator.frame_of(7)
        for v in range(20, 40):
            allocator.allocate(v)
        for v in range(20, 30):
            allocator.free(v)
        assert allocator.frame_of(7) == before

    def test_encode_decode_roundtrip(self, allocator):
        placed = []
        for v in range(40):
            if allocator.allocate(v) is not None:
                placed.append(v)
        for v in placed:
            code = allocator.encode(v)
            assert 0 <= code < (1 << allocator.address_bits)
            assert allocator.decode(v, code) == allocator.frame_of(v)

    def test_decode_range_checked(self, allocator):
        allocator.allocate(1)
        with pytest.raises(ValueError):
            allocator.decode(1, allocator.associativity)


class TestFullyAssociative:
    def test_associativity_is_p(self):
        a = FullyAssociativeAllocator(128)
        assert a.associativity == 128
        assert a.address_bits == 7

    def test_no_failures_until_truly_full(self):
        a = FullyAssociativeAllocator(8)
        for v in range(8):
            assert a.allocate(v) is not None
        assert a.allocate(99) is None  # physically full
        a.free(0)
        assert a.allocate(99) is not None

    def test_frames_are_distinct(self):
        a = FullyAssociativeAllocator(16)
        frames = {a.allocate(v) for v in range(16)}
        assert frames == set(range(16))


class TestBucketedGeometry:
    def test_divisibility_enforced(self):
        with pytest.raises(ValueError, match="divisible"):
            OneChoiceAllocator(65, 8)

    def test_bucket_size_and_associativity(self):
        a = OneChoiceAllocator(64, 8, seed=0)
        assert a.bucket_size == 8
        assert a.associativity == 8
        assert a.address_bits == 3

        g = GreedyAllocator(64, 8, d=2, seed=0)
        assert g.associativity == 16
        assert g.address_bits == 4

        i = IcebergAllocator(64, 8, lam=4.0, seed=0)
        assert i.associativity == 24
        assert i.address_bits == 5

    def test_frame_lies_in_a_candidate_bucket(self):
        a = IcebergAllocator(64, 8, lam=4.0, seed=1)
        for v in range(40):
            frame = a.allocate(v)
            if frame is None:
                continue
            bucket = frame // a.bucket_size
            assert bucket in a.strategy.candidates(v)

    def test_failure_when_candidates_full(self):
        # 2 buckets of 2 frames, one choice: ~ collisions guaranteed
        a = OneChoiceAllocator(4, 2, seed=0)
        failures_before = a.failures
        outcomes = [a.allocate(v) for v in range(12)]
        assert None in outcomes
        assert a.failures > failures_before
        assert len(a) == sum(1 for o in outcomes if o is not None)

    def test_failed_page_not_resident(self):
        a = OneChoiceAllocator(2, 2, seed=0)
        results = {v: a.allocate(v) for v in range(10)}
        failed = [v for v, f in results.items() if f is None]
        assert failed, "expected at least one failure at this density"
        v = failed[0]
        assert a.frame_of(v) is None
        with pytest.raises(KeyError):
            a.free(v)

    def test_slot_reuse_within_bucket(self):
        a = OneChoiceAllocator(8, 1, seed=0)  # single bucket of 8
        frames = [a.allocate(v) for v in range(8)]
        assert sorted(frames) == list(range(8))
        a.free(3)
        new = a.allocate(100)
        assert new == frames[3]  # freed slot reused

    def test_max_bucket_load_bounded(self):
        a = IcebergAllocator(64, 8, lam=4.0, seed=2)
        for v in range(64):
            a.allocate(v)
        assert a.max_bucket_load <= a.bucket_size


class TestAllocatorProperties:
    @given(st.lists(st.tuples(st.booleans(), st.integers(0, 63)), max_size=300))
    @settings(max_examples=40)
    def test_iceberg_invariants_under_arbitrary_churn(self, ops):
        a = IcebergAllocator(64, 8, lam=4.0, seed=5)
        resident: dict[int, int] = {}
        for insert, v in ops:
            if insert and v not in resident:
                f = a.allocate(v)
                if f is not None:
                    resident[v] = f
            elif not insert and v in resident:
                a.free(v)
                del resident[v]
        # injectivity + stability + decode agreement, all at once
        assert len(set(resident.values())) == len(resident)
        for v, f in resident.items():
            assert a.frame_of(v) == f
            assert a.decode(v, a.encode(v)) == f


class TestBulkReplay:
    """`bulk_replay` must equal the per-event allocate/free sequence —
    frames, codes, LIFO slot order, and the stop-after-failure contract."""

    def _make(self, seed=3):
        return IcebergAllocator(64, 8, lam=4.0, seed=seed)

    def _stream(self, alloc, rng, n_events, first_evt):
        """A valid stream generated against a scratch twin of *alloc*."""
        inserts, evicts = [], []
        ball = 1000
        for k in range(n_events):
            if k >= first_evt:
                if not alloc._frame_of:
                    break
                victim = rng.choice(sorted(alloc._frame_of))
                alloc.free(victim)
                evicts.append(victim)
            inserts.append(ball)
            if alloc.allocate(ball) is None:
                ball += 1
                break
            ball += 1
        return inserts, evicts

    def test_matches_per_event_replay(self):
        import random

        for seed in range(5):
            rng = random.Random(seed)
            gen = self._make(seed)
            ref = self._make(seed)
            bat = self._make(seed)
            warm = [v for v in range(40) if gen.allocate(v) is not None]
            for a in (ref, bat):
                for v in range(40):
                    a.allocate(v)
                a.game.failures = gen.game.failures
                a.game.insertions = gen.game.insertions
            first_evt = rng.choice([0, 2])
            inserts, evicts = self._stream(gen, rng, 60, first_evt)

            ref_codes, ref_failed = [], -1
            j = 0
            for k, vpn in enumerate(inserts):
                if k >= first_evt:
                    ref.free(evicts[j])
                    j += 1
                if ref.allocate(vpn) is None:
                    ref_codes.append(None)
                    ref_failed = k
                    break
                ref_codes.append(ref.encode(vpn))

            codes, failed = bat.bulk_replay(inserts, evicts, first_evt)
            assert codes == ref_codes
            assert failed == ref_failed
            assert bat._frame_of == ref._frame_of
            assert bat._free_slots == ref._free_slots  # exact LIFO order
            assert warm  # the warm phase genuinely placed pages

    def test_declines_without_batch_hook(self):
        from repro.ballsbins import OneChoiceStrategy
        from repro.core import BucketedAllocator

        class NoBatch(OneChoiceStrategy):
            batch_place = None

        alloc = BucketedAllocator(32, 8, NoBatch(), seed=0)
        assert alloc.bulk_replay([1, 2], [], 2) is None


class TestDecodeSingleHash:
    """The decode bugfix: only the stored choice's hash is evaluated."""

    def test_decode_calls_candidate_not_candidates(self):
        alloc = IcebergAllocator(64, 8, lam=4.0, seed=1)
        calls = {"candidate": 0, "candidates": 0}
        orig_candidate = alloc.strategy.candidate
        orig_candidates = alloc.strategy.candidates
        alloc.strategy.candidate = lambda b, i: (
            calls.__setitem__("candidate", calls["candidate"] + 1)
            or orig_candidate(b, i)
        )
        alloc.strategy.candidates = lambda b: (
            calls.__setitem__("candidates", calls["candidates"] + 1)
            or orig_candidates(b)
        )
        for vpn in range(20):
            if alloc.allocate(vpn) is None:
                continue
            code = alloc.encode(vpn)
            assert alloc.decode(vpn, code) == alloc.frame_of(vpn)
        assert calls["candidate"] > 0
        assert calls["candidates"] == 0  # encode uses choice_index, not this

    def test_greedy_left_group_arithmetic_survives(self):
        from repro.ballsbins import GreedyLeftStrategy
        from repro.core import BucketedAllocator

        alloc = BucketedAllocator(64, 8, GreedyLeftStrategy(2), seed=5)
        for vpn in range(24):
            if alloc.allocate(vpn) is None:
                continue
            assert alloc.decode(vpn, alloc.encode(vpn)) == alloc.frame_of(vpn)


class _FixedHash:
    """Deterministic stand-in for MultiplyShiftHash with forced collisions."""

    def __init__(self, table, range_, salt):
        self.table = dict(table)
        self.range = range_
        self.salt = salt

    def __call__(self, x):
        if x in self.table:
            return self.table[x]
        return (x * 2654435761 + self.salt) % self.range

    def many(self, xs):
        import numpy as np

        return np.array([self(int(v)) for v in np.asarray(xs)], dtype=np.int64)


class _FixedFamily:
    def __init__(self, hashes):
        self.functions = tuple(hashes)
        self.k = len(hashes)
        self.range = hashes[0].range

    def __call__(self, x):
        return tuple(h(x) for h in self.functions)

    def __getitem__(self, i):
        return self.functions[i]

    def __len__(self):
        return self.k


class TestHashCollisionStability:
    """When hᵢ(x) = hⱼ(x) (i < j), `choice_index` stores the first match
    while Iceberg's layer bookkeeping may record the other layer. Pin that
    encode→decode still lands the correct frame — decode only needs the
    bin, never the layer — and that the batch kernel emits the same code."""

    BALL = 77  # front bin 3, back candidates 3 (collides with front) and 5
    FILLER = 33  # fills front bin 3's front slot first

    def _make_iceberg(self):
        alloc = IcebergAllocator(64, 8, lam=1.0, front_slack=0.0, seed=0)
        n = 8
        fam = _FixedFamily(
            [
                _FixedHash({self.BALL: 3, self.FILLER: 3}, n, salt=1),
                _FixedHash({self.BALL: 3}, n, salt=2),  # h1 == h0: collision
                _FixedHash({self.BALL: 5}, n, salt=3),
            ]
        )
        alloc.strategy._family = fam
        return alloc

    def test_encode_decode_lands_the_frame_under_collision(self):
        alloc = self._make_iceberg()
        strat = alloc.strategy
        assert strat.front_capacity == 1
        assert alloc.allocate(self.FILLER) is not None  # front of bin 3 full
        frame = alloc.allocate(self.BALL)
        assert frame is not None
        # the spill tied back bins 3 and 5 at load 0; first choice wins,
        # so the ball sits in bin 3's BACK layer...
        assert frame // alloc.bucket_size == 3
        assert strat._layer[self.BALL] is False
        # ...while the encoder stores the FIRST matching candidate index
        code = alloc.encode(self.BALL)
        assert strat.choice_index(self.BALL, 3) == 0
        assert code // alloc.bucket_size == 0
        # the decode contract survives the layer/choice divergence
        assert alloc.decode(self.BALL, code) == frame
        # and deletion unwinds the correct (back) layer
        alloc.free(self.BALL)
        assert int(strat._back[3]) == 0
        assert int(strat._front[3]) == 1  # the filler's front slot

    def test_batch_kernel_emits_the_same_code_under_collision(self):
        ref = self._make_iceberg()
        ref.allocate(self.FILLER)
        ref.allocate(self.BALL)
        bat = self._make_iceberg()
        codes, failed = bat.bulk_replay([self.FILLER, self.BALL], [], 2)
        assert failed == -1
        assert codes == [ref.encode(self.FILLER), ref.encode(self.BALL)]
        assert bat._frame_of == ref._frame_of
        assert dict(bat.strategy._layer) == dict(ref.strategy._layer)

    def test_greedy_collision_keeps_first_match(self):
        alloc = GreedyAllocator(64, 8, seed=0)
        fam = _FixedFamily(
            [_FixedHash({self.BALL: 4}, 8, salt=1),
             _FixedHash({self.BALL: 4}, 8, salt=2)]
        )
        alloc.strategy._family = fam
        frame = alloc.allocate(self.BALL)
        assert frame is not None and frame // alloc.bucket_size == 4
        code = alloc.encode(self.BALL)
        assert code // alloc.bucket_size == 0  # first match, never 1
        assert alloc.decode(self.BALL, code) == frame
