"""Unit tests for repro._util helpers."""

import numpy as np
import pytest

from repro._util import (
    as_rng,
    ceil_div,
    ceil_log2,
    check_in_range,
    check_positive_int,
    check_probability,
    is_power_of_two,
    next_power_of_two,
)


class TestCheckPositiveInt:
    def test_accepts_positive(self):
        assert check_positive_int(5, "x") == 5

    def test_accepts_numpy_integer(self):
        assert check_positive_int(np.int64(7), "x") == 7
        assert isinstance(check_positive_int(np.int64(7), "x"), int)

    def test_rejects_zero_and_negative(self):
        with pytest.raises(ValueError):
            check_positive_int(0, "x")
        with pytest.raises(ValueError):
            check_positive_int(-3, "x")

    def test_rejects_bool_and_float(self):
        with pytest.raises(TypeError):
            check_positive_int(True, "x")
        with pytest.raises(TypeError):
            check_positive_int(1.5, "x")

    def test_error_message_names_parameter(self):
        with pytest.raises(ValueError, match="capacity"):
            check_positive_int(-1, "capacity")


class TestCheckInRange:
    def test_inside(self):
        assert check_in_range(3, "x", 0, 10) == 3

    def test_boundaries(self):
        assert check_in_range(0, "x", 0, 10) == 0
        with pytest.raises(ValueError):
            check_in_range(10, "x", 0, 10)

    def test_rejects_non_int(self):
        with pytest.raises(TypeError):
            check_in_range(1.0, "x", 0, 10)


class TestCheckProbability:
    def test_inclusive_bounds(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0

    def test_exclusive_bounds(self):
        with pytest.raises(ValueError):
            check_probability(0.0, "p", inclusive=False)
        with pytest.raises(ValueError):
            check_probability(1.0, "p", inclusive=False)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            check_probability(1.5, "p")


class TestPowersOfTwo:
    def test_is_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(1024)
        assert not is_power_of_two(0)
        assert not is_power_of_two(3)
        assert not is_power_of_two(-4)

    def test_next_power_of_two(self):
        assert next_power_of_two(1) == 1
        assert next_power_of_two(3) == 4
        assert next_power_of_two(1024) == 1024
        assert next_power_of_two(1025) == 2048
        with pytest.raises(ValueError):
            next_power_of_two(0)


class TestCeilHelpers:
    def test_ceil_div(self):
        assert ceil_div(10, 3) == 4
        assert ceil_div(9, 3) == 3
        assert ceil_div(0, 5) == 0

    def test_ceil_log2(self):
        assert ceil_log2(1) == 0
        assert ceil_log2(2) == 1
        assert ceil_log2(3) == 2
        assert ceil_log2(1024) == 10
        with pytest.raises(ValueError):
            ceil_log2(0)


class TestAsRng:
    def test_passes_through_generator(self):
        rng = np.random.default_rng(1)
        assert as_rng(rng) is rng

    def test_seeds_deterministically(self):
        a = as_rng(42).integers(1 << 30)
        b = as_rng(42).integers(1 << 30)
        assert a == b
