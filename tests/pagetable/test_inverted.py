"""Tests for the inverted (hashed) page table."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pagetable import InvertedPageTable, RadixPageTable


class TestMapping:
    def test_roundtrip(self):
        pt = InvertedPageTable(16, seed=0)
        pt.map(1000, 3)
        t = pt.translate(1000)
        assert t.pfn == 3
        assert t.chain_steps >= 1

    def test_fault_is_none(self):
        pt = InvertedPageTable(16, seed=0)
        assert pt.translate(5) is None
        assert 5 not in pt

    def test_frame_conflict_rejected(self):
        pt = InvertedPageTable(16, seed=0)
        pt.map(1, 3)
        with pytest.raises(ValueError, match="already holds"):
            pt.map(2, 3)

    def test_double_map_rejected(self):
        pt = InvertedPageTable(16, seed=0)
        pt.map(1, 3)
        with pytest.raises(ValueError, match="already mapped"):
            pt.map(1, 4)

    def test_pfn_range_checked(self):
        pt = InvertedPageTable(16, seed=0)
        with pytest.raises(ValueError):
            pt.map(1, 16)

    def test_unmap(self):
        pt = InvertedPageTable(16, seed=0)
        pt.map(1, 3)
        assert pt.unmap(1) == 3
        assert pt.translate(1) is None
        with pytest.raises(KeyError):
            pt.unmap(1)

    def test_unmap_middle_of_chain(self):
        """Force several vpns into one bucket and remove the middle one."""
        pt = InvertedPageTable(8, anchor_ratio=1 / 8, seed=0)  # 1 bucket
        for pfn, vpn in enumerate([10, 20, 30]):
            pt.map(vpn, pfn)
        pt.unmap(20)
        assert pt.translate(10).pfn == 0
        assert pt.translate(30).pfn == 2
        assert pt.translate(20) is None


class TestChainCosts:
    def test_single_bucket_chain_lengths(self):
        pt = InvertedPageTable(8, anchor_ratio=1 / 8, seed=0)
        for pfn, vpn in enumerate([10, 20, 30]):
            pt.map(vpn, pfn)
        # chain head is the most recently mapped
        assert pt.translate(30).chain_steps == 1
        assert pt.translate(10).chain_steps == 3

    def test_mean_chain_short_at_normal_sizing(self):
        pt = InvertedPageTable(1 << 10, anchor_ratio=1.0, seed=1)
        rng = np.random.default_rng(0)
        vpns = rng.choice(1 << 20, size=1 << 10, replace=False)
        for pfn, vpn in enumerate(vpns):
            pt.map(int(vpn), pfn)
        for vpn in vpns:
            pt.translate(int(vpn))
        assert pt.mean_chain_steps < 2.0  # expected ~1.5 at load 1.0

    def test_memory_independent_of_va(self):
        """The inverted table's selling point vs radix."""
        frames = 1 << 10
        inv = InvertedPageTable(frames, seed=0)
        radix = RadixPageTable(levels=4, bits_per_level=9)
        rng = np.random.default_rng(1)
        vpns = rng.choice(512**4 - 1, size=frames, replace=False)
        for pfn, vpn in enumerate(vpns):
            inv.map(int(vpn), pfn)
            radix.map(int(vpn), pfn)
        inv_words = inv.memory_words
        # radix: ~512 words per node
        radix_words = radix.nodes * 512
        assert inv_words < radix_words  # sparse VA: radix pays per mapping


class TestInvertedProperty:
    @given(
        st.lists(
            st.tuples(st.booleans(), st.integers(0, 100)),
            max_size=200,
        )
    )
    @settings(max_examples=40)
    def test_matches_dict_model(self, ops):
        pt = InvertedPageTable(32, seed=2)
        model: dict[int, int] = {}
        free = list(range(31, -1, -1))
        for do_map, vpn in ops:
            if do_map and vpn not in model and free:
                pfn = free.pop()
                pt.map(vpn, pfn)
                model[vpn] = pfn
            elif not do_map and vpn in model:
                freed = pt.unmap(vpn)
                assert freed == model.pop(vpn)
                free.append(freed)
        assert len(pt) == len(model)
        for vpn, pfn in model.items():
            assert pt.translate(vpn).pfn == pfn
