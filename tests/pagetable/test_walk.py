"""Tests for the page walker, PWC, and nested-translation cost."""

from repro.pagetable import PageWalker, RadixPageTable, nested_walk_cost


class TestPageWalker:
    def test_walk_counts_touches(self):
        pt = RadixPageTable()
        pt.map(5, 50)
        walker = PageWalker(pt)
        r = walker.walk(5)
        assert r.translation.pfn == 50
        assert r.memory_touches == 4
        assert r.pwc_hits == 0

    def test_fault_touches_full_depth(self):
        pt = RadixPageTable()
        walker = PageWalker(pt)
        r = walker.walk(5)
        assert r.translation is None
        assert r.memory_touches == 4

    def test_huge_page_shorter_walk(self):
        pt = RadixPageTable()
        pt.map(0, 0, page_size=512)
        walker = PageWalker(pt)
        assert walker.walk(100).memory_touches == 3

    def test_pwc_accelerates_locality(self):
        pt = RadixPageTable()
        for vpn in range(16):
            pt.map(vpn, vpn)
        cold = PageWalker(pt)
        warm = PageWalker(pt, pwc_entries=64)
        for _ in range(3):
            for vpn in range(16):
                cold.walk(vpn)
                warm.walk(vpn)
        assert warm.total_touches < cold.total_touches
        assert warm.total_pwc_hits > 0

    def test_mean_touches(self):
        pt = RadixPageTable()
        pt.map(1, 1)
        walker = PageWalker(pt)
        assert walker.mean_touches == 0.0
        walker.walk(1)
        assert walker.mean_touches == 4.0


class TestNestedWalkCost:
    def test_x86_values(self):
        # the classical 24-access worst case for 4+4 levels
        assert nested_walk_cost(4, 4) == 24

    def test_formula(self):
        assert nested_walk_cost(1, 1) == 3
        assert nested_walk_cost(2, 3) == 11

    def test_squaring_effect(self):
        """The paper's intro: virtualization squares miss cost — the nested
        walk grows multiplicatively, not additively."""
        flat = 4
        nested = nested_walk_cost(4, 4)
        assert nested > 2 * flat
