"""Tests for the sparse radix page table."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pagetable import RadixPageTable


class TestGeometry:
    def test_max_vpn(self):
        pt = RadixPageTable(levels=4, bits_per_level=9)
        assert pt.max_vpn == 512**4

    def test_leaf_level_for(self):
        pt = RadixPageTable(levels=4, bits_per_level=9)
        assert pt.leaf_level_for(1) == 1
        assert pt.leaf_level_for(512) == 2
        assert pt.leaf_level_for(512 * 512) == 3
        with pytest.raises(ValueError):
            pt.leaf_level_for(2)  # not a radix power
        with pytest.raises(ValueError):
            pt.leaf_level_for(512**4)  # whole tree, no room for a leaf


class TestMapTranslate:
    def test_base_page_roundtrip(self):
        pt = RadixPageTable()
        pt.map(12345, 678)
        t = pt.translate(12345)
        assert t.pfn == 678
        assert t.page_size == 1
        assert t.levels_walked == 4

    def test_unmapped_is_none(self):
        pt = RadixPageTable()
        assert pt.translate(1) is None
        assert 1 not in pt

    def test_huge_mapping_covers_run(self):
        pt = RadixPageTable()
        pt.map(1024, 2048, page_size=512)
        for off in (0, 1, 511):
            t = pt.translate(1024 + off)
            assert t.pfn == 2048 + off
            assert t.page_size == 512
            assert t.levels_walked == 3  # one level shorter walk

    def test_alignment_enforced(self):
        pt = RadixPageTable()
        with pytest.raises(ValueError, match="aligned"):
            pt.map(1, 0, page_size=512)
        with pytest.raises(ValueError, match="aligned"):
            pt.map(512, 3, page_size=512)

    def test_overlap_rejected(self):
        pt = RadixPageTable()
        pt.map(0, 0, page_size=512)
        with pytest.raises(ValueError):
            pt.map(5, 99)  # under the huge leaf
        with pytest.raises(ValueError):
            pt.map(0, 0, page_size=512)

    def test_vpn_range_checked(self):
        pt = RadixPageTable(levels=2, bits_per_level=4)
        with pytest.raises(ValueError):
            pt.map(256, 0)  # max_vpn = 16**2
        with pytest.raises(ValueError):
            pt.map(0, -1)


class TestUnmap:
    def test_unmap_then_fault(self):
        pt = RadixPageTable()
        pt.map(7, 9)
        pt.unmap(7)
        assert pt.translate(7) is None
        assert len(pt) == 0

    def test_unmap_absent_raises(self):
        pt = RadixPageTable()
        with pytest.raises(KeyError):
            pt.unmap(7)

    def test_node_pruning(self):
        pt = RadixPageTable()
        assert pt.nodes == 1
        pt.map(0, 0)
        nodes_with_mapping = pt.nodes
        assert nodes_with_mapping == 4  # root + 3 interior
        pt.unmap(0)
        assert pt.nodes == 1  # all interior nodes pruned

    def test_unmap_huge(self):
        pt = RadixPageTable()
        pt.map(512, 0, page_size=512)
        pt.unmap(700)  # any covered vpn works
        assert pt.translate(512) is None


class TestMixedSizesProperty:
    @given(
        st.lists(
            st.tuples(st.integers(0, 255), st.sampled_from([1, 16])),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=40)
    def test_matches_dict_model(self, ops):
        """Radix table behaves like a flat dict of page->frame built from the
        same non-overlapping mapping stream."""
        pt = RadixPageTable(levels=2, bits_per_level=4)  # max_vpn=256
        model: dict[int, int] = {}
        next_pfn = 0
        for base, size in ops:
            vpn = base - (base % size)
            covered = range(vpn, vpn + size)
            if any(v in model for v in covered):
                continue
            pfn = next_pfn - (next_pfn % size) + (size if next_pfn % size else 0)
            pt.map(vpn, pfn, page_size=size)
            for i, v in enumerate(covered):
                model[v] = pfn + i
            next_pfn = pfn + size
        for v in range(256):
            t = pt.translate(v)
            if v in model:
                assert t is not None and t.pfn == model[v]
            else:
                assert t is None
        assert len(pt) <= len(model)
