"""Smoke matrix: every MM algorithm × every workload family.

Each cell replays a small trace and asserts ledger sanity — coverage
insurance that any (algorithm, workload) pairing a user composes through
the public API at least runs and accounts coherently.
"""

import pytest

from repro.core import ATCostModel
from repro.mmu import (
    BasePageMM,
    DecoupledMM,
    HybridMM,
    NestedTranslationMM,
    PhysicalHugePageMM,
    THPStyleMM,
)
from repro.sim import simulate
from repro.workloads import (
    BimodalWorkload,
    BTreeLookupWorkload,
    Graph500Workload,
    InterleavedWorkload,
    MarkovPhaseWorkload,
    RandomWalkWorkload,
    SequentialWorkload,
    StridedWorkload,
    UniformWorkload,
    ZipfWorkload,
)

RAM = 1 << 11
TLB = 32
N = 4000

WORKLOADS = {
    "bimodal": lambda: BimodalWorkload(1 << 13, 1 << 7),
    "random-walk": lambda: RandomWalkWorkload(1 << 10, graph_seed=0),
    "graph500": lambda: Graph500Workload(scale=8, edgefactor=8, graph_seed=0),
    "zipf": lambda: ZipfWorkload(1 << 13, s=1.0),
    "sequential": lambda: SequentialWorkload(1 << 13),
    "strided": lambda: StridedWorkload(1 << 13, stride=7),
    "uniform": lambda: UniformWorkload(1 << 13),
    "btree": lambda: BTreeLookupWorkload(20_000, fanout=32, zipf_s=0.9),
    "interleaved": lambda: InterleavedWorkload(
        [ZipfWorkload(1 << 10, s=1.0, perm_seed=i) for i in range(2)], quantum=8
    ),
    "markov": lambda: MarkovPhaseWorkload(
        [ZipfWorkload(1 << 12, s=1.1), SequentialWorkload(1 << 12)], mean_dwell=300
    ),
}

ALGORITHMS = {
    "base": lambda: BasePageMM(TLB, RAM),
    "huge16": lambda: PhysicalHugePageMM(TLB, RAM, huge_page_size=16),
    "decoupled": lambda: DecoupledMM(TLB, RAM, seed=0),
    "hybrid4": lambda: HybridMM(TLB, RAM, chunk=4, seed=0),
    "thp": lambda: THPStyleMM(TLB, RAM, huge_page_size=16, promote_utilization=0.75),
    "nested": lambda: NestedTranslationMM(TLB, 64, RAM),
}


@pytest.mark.parametrize("wl_name", sorted(WORKLOADS))
@pytest.mark.parametrize("mm_name", sorted(ALGORITHMS))
def test_matrix_cell(mm_name, wl_name):
    trace = WORKLOADS[wl_name]().generate(N, seed=0)
    mm = ALGORITHMS[mm_name]()
    ledger = simulate(mm, trace, warmup=N // 4)

    measured = N - N // 4
    assert ledger.accesses == measured
    assert ledger.tlb_hits + ledger.tlb_misses == measured
    assert 0 <= ledger.ios  # IOs can exceed accesses via amplification
    assert ledger.paging_failures <= measured
    cost = ATCostModel(epsilon=0.01).cost(ledger)
    assert cost >= 0.0
    # a second measurement phase also accounts cleanly
    mm.reset_stats()
    mm.run(trace[:100])
    assert mm.ledger.accesses == 100
