"""Tests for run_game and the theory curves of eqs. (5)/(6)/Theorem 2.

The load-bound tests are the finite-size checks behind the paper's
asymptotics: measured maxima must respect the closed-form curves (which
carry explicit constants here, so they are hard ceilings for these sizes).
"""

import math

import pytest

from repro.ballsbins import (
    BallsAndBinsGame,
    GreedyStrategy,
    IcebergStrategy,
    OneChoiceStrategy,
    fifo_churn,
    fill,
    greedy_max_load_bound,
    iceberg_max_load_bound,
    one_choice_max_load_bound,
    run_game,
)


class TestRunGame:
    def test_counts(self):
        game = BallsAndBinsGame(16, OneChoiceStrategy(), seed=0)
        result = run_game(game, fifo_churn(8, 20))
        assert result.insertions == 28
        assert result.deletions == 20
        assert result.operations == 48
        assert result.final_balls == 8

    def test_sampling(self):
        game = BallsAndBinsGame(16, OneChoiceStrategy(), seed=0)
        result = run_game(game, fill(64), sample_every=16)
        assert len(result.load_samples) == 4
        ops, loads = zip(*result.load_samples)
        assert list(ops) == [16, 32, 48, 64]
        assert all(l >= 1 for l in loads)

    def test_unknown_op_raises(self):
        game = BallsAndBinsGame(4, OneChoiceStrategy(), seed=0)
        with pytest.raises(ValueError):
            run_game(game, [("x", 1)])

    def test_peak_overhead(self):
        game = BallsAndBinsGame(4, OneChoiceStrategy(), seed=0)
        result = run_game(game, fill(8))
        assert result.peak_overhead == result.peak_load / 2.0


class TestTheoryCurves:
    def test_one_choice_regimes(self):
        n = 1 << 10
        log_n = math.log(n)
        # sparse: ~ log n / log(log n / λ)
        assert one_choice_max_load_bound(n, 1.0) > 1.0
        # heavy: λ + sqrt-term, so slightly above λ
        lam = 100 * log_n
        heavy = one_choice_max_load_bound(n, lam)
        assert lam < heavy < 1.25 * lam  # λ plus a lower-order √(λ log n) term

    def test_one_choice_monotone_in_lambda(self):
        n = 1 << 12
        values = [one_choice_max_load_bound(n, lam) for lam in (8, 32, 128, 512)]
        assert values == sorted(values)

    def test_greedy_additive_loglog(self):
        n = 1 << 16
        b = greedy_max_load_bound(n, 10.0, d=2)
        assert b >= 20.0  # the Ω(λ) gap the paper highlights
        assert b <= 2 * 10.0 + math.log(math.log(n)) / math.log(2) + 1.0 + 1e-9

    def test_iceberg_tighter_than_greedy_for_large_lambda(self):
        n = 1 << 16
        lam = 64.0
        assert iceberg_max_load_bound(n, lam) < greedy_max_load_bound(n, lam)

    def test_degenerate_sizes(self):
        assert one_choice_max_load_bound(1, 5.0) == 5.0
        assert one_choice_max_load_bound(8, 0.0) == 0.0


class TestMeasuredLoadsRespectTheory:
    """Static fill at various λ: measured peak <= closed-form curve."""

    N = 1 << 10

    @pytest.mark.parametrize("lam", [16, 64])
    def test_one_choice(self, lam):
        game = BallsAndBinsGame(self.N, OneChoiceStrategy(), seed=1)
        run_game(game, fill(self.N * lam))
        assert game.peak_load <= one_choice_max_load_bound(self.N, lam) * 1.1

    @pytest.mark.parametrize("lam", [4, 16])
    def test_greedy(self, lam):
        game = BallsAndBinsGame(self.N, GreedyStrategy(2), seed=1)
        run_game(game, fill(self.N * lam))
        assert game.peak_load <= greedy_max_load_bound(self.N, lam)

    @pytest.mark.parametrize("lam", [4, 16])
    def test_iceberg_static(self, lam):
        game = BallsAndBinsGame(self.N, IcebergStrategy(lam=lam), seed=1)
        run_game(game, fill(self.N * lam))
        assert game.peak_load <= iceberg_max_load_bound(self.N, lam)

    def test_iceberg_dynamic_churn(self):
        """Theorem 2 is a *dynamic* bound: check it under FIFO churn."""
        lam = 8
        game = BallsAndBinsGame(self.N, IcebergStrategy(lam=lam), seed=2)
        run_game(game, fifo_churn(self.N * lam, self.N * lam * 2))
        assert game.peak_load <= iceberg_max_load_bound(self.N, lam)

    def test_iceberg_peak_has_theorem2_shape(self):
        """Theorem 2's shape: front capacity (1+o(1))λ plus a log log n
        spill term — the peak must sit within log log n + O(1) of the
        front capacity, not within O(λ)."""
        import math

        lam = 32
        strategy = IcebergStrategy(lam=lam)
        game = BallsAndBinsGame(self.N, strategy, seed=3)
        run_game(game, fifo_churn(self.N * lam, self.N * 16))
        loglog = math.log(math.log(self.N))
        assert game.peak_load <= strategy.front_capacity + loglog + 2
