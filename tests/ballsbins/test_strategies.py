"""Tests for the placement strategies, including the load-bound behaviour
that Section 4 of the paper relies on."""

import pytest

from repro.ballsbins import (
    BallsAndBinsGame,
    GreedyLeftStrategy,
    GreedyStrategy,
    IcebergStrategy,
    OneChoiceStrategy,
    fill,
    run_game,
)


class TestOneChoice:
    def test_uses_single_hash(self):
        s = OneChoiceStrategy()
        game = BallsAndBinsGame(64, s, seed=0)
        for ball in range(100):
            assert game.insert(ball) == s.family[0](ball)

    def test_choice_index(self):
        s = OneChoiceStrategy()
        BallsAndBinsGame(64, s, seed=0)
        b = s.family[0](5)
        assert s.choice_index(5, b) == 0
        with pytest.raises(ValueError):
            s.choice_index(5, (b + 1) % 64)


class TestGreedy:
    def test_requires_positive_d(self):
        with pytest.raises(ValueError):
            GreedyStrategy(0)

    def test_places_in_less_loaded(self):
        s = GreedyStrategy(2)
        game = BallsAndBinsGame(8, s, seed=1)
        for ball in range(64):
            b = game.insert(ball)
            c1, c2 = s.family[0](ball), s.family[1](ball)
            # chosen bin's load (after insert) must be <= the other's + 1
            other = c2 if b == c1 else c1
            assert game.loads[b] <= game.loads[other] + 1

    def test_beats_one_choice_at_unit_load(self):
        """The classic two-choice win: max load log log n vs log n/log log n."""
        n = 1 << 12
        one = BallsAndBinsGame(n, OneChoiceStrategy(), seed=0)
        two = BallsAndBinsGame(n, GreedyStrategy(2), seed=0)
        run_game(one, fill(n))
        run_game(two, fill(n))
        assert two.max_load < one.max_load

    def test_capacitated_failure_only_when_all_choices_full(self):
        s = GreedyStrategy(2)
        game = BallsAndBinsGame(4, s, bin_capacity=2, seed=2)
        failures_seen = 0
        for ball in range(40):
            b = game.insert(ball)
            if b is None:
                failures_seen += 1
                c = s.family(ball)
                assert all(game.loads[bi] >= 2 for bi in c)
        assert game.max_load <= 2


class TestGreedyLeft:
    def test_candidates_in_disjoint_groups(self):
        s = GreedyLeftStrategy(2)
        BallsAndBinsGame(64, s, seed=0)
        for ball in range(100):
            c1, c2 = s.candidates(ball)
            assert 0 <= c1 < 32
            assert 32 <= c2 < 64

    def test_rejects_too_few_bins(self):
        s = GreedyLeftStrategy(4)
        with pytest.raises(ValueError):
            BallsAndBinsGame(2, s, seed=0)

    def test_comparable_to_greedy(self):
        n = 1 << 10
        left = BallsAndBinsGame(n, GreedyLeftStrategy(2), seed=0)
        run_game(left, fill(n))
        assert left.max_load <= 6  # log log n territory


class TestIceberg:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            IcebergStrategy(lam=0)
        with pytest.raises(ValueError):
            IcebergStrategy(lam=4, front_slack=-0.1)

    def test_uses_three_hashes_for_d2(self):
        s = IcebergStrategy(lam=4, d=2)
        assert s.choices == 3

    def test_front_layer_preferred(self):
        s = IcebergStrategy(lam=8, d=2, front_slack=0.25)
        game = BallsAndBinsGame(32, s, seed=0)
        for ball in range(32):  # λ=1 << front capacity: all go front
            b = game.insert(ball)
            assert b == s.family[0](ball)
        assert int(s.front_loads.sum()) == 32
        assert int(s.back_loads.sum()) == 0

    def test_spill_goes_to_back_layer(self):
        s = IcebergStrategy(lam=1, d=2, front_slack=0.0)  # front capacity 1
        game = BallsAndBinsGame(4, s, seed=3)
        for ball in range(32):
            game.insert(ball)
        assert int(s.front_loads.sum()) + int(s.back_loads.sum()) == 32
        assert (s.front_loads <= s.front_capacity).all()
        assert int(s.back_loads.sum()) > 0

    def test_layers_tracked_through_deletion(self):
        s = IcebergStrategy(lam=1, d=2, front_slack=0.0)
        game = BallsAndBinsGame(4, s, seed=3)
        for ball in range(24):
            game.insert(ball)
        for ball in range(24):
            game.delete(ball)
        assert int(s.front_loads.sum()) == 0
        assert int(s.back_loads.sum()) == 0
        assert (s.front_loads >= 0).all() and (s.back_loads >= 0).all()

    def test_front_capacity_formula(self):
        s = IcebergStrategy(lam=10, front_slack=0.2)
        assert s.front_capacity == 12
        s = IcebergStrategy(lam=0.5, front_slack=0.0)
        assert s.front_capacity == 1

    def test_unplaced_readonly_views(self):
        s = IcebergStrategy(lam=4)
        BallsAndBinsGame(8, s, seed=0)
        with pytest.raises(ValueError):
            s.front_loads[0] = 5
