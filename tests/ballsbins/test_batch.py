"""Bit-identity of the bulk replay kernel against the per-event game.

`replay_game_events` must leave a game in exactly the state the per-event
``insert``/``delete`` sequence would — loads, live-ball map, histogram,
counters, and (for Iceberg) front/back/layer state — including stopping
right after a mid-stream paging failure. These tests fuzz random valid
event streams for every strategy family and compare everything.
"""

import random

import numpy as np
import pytest

from repro.ballsbins import (
    BallsAndBinsGame,
    GreedyLeftStrategy,
    GreedyStrategy,
    IcebergStrategy,
    OneChoiceStrategy,
    replay_game_events,
)
from repro.ballsbins.batch import BatchDecisions

N_BINS = 16
CAPACITY = 3
UNIVERSE = 400

STRATEGIES = {
    "one-choice": lambda: OneChoiceStrategy(),
    "greedy2": lambda: GreedyStrategy(2),
    "greedy3": lambda: GreedyStrategy(3),
    "greedy-left": lambda: GreedyLeftStrategy(2),
    "iceberg": lambda: IcebergStrategy(lam=2.0, d=2),
}


def _make_game(name, seed=7):
    return BallsAndBinsGame(
        N_BINS, STRATEGIES[name](), bin_capacity=CAPACITY, seed=seed
    )


def _state(game):
    sig = {
        "loads": game.loads.tolist(),
        "bin_of": dict(game._bin_of),
        "load_counts": dict(game._load_counts),
        "max_load": game._max_load,
        "peak_load": game.peak_load,
        "insertions": game.insertions,
        "deletions": game.deletions,
        "failures": game.failures,
    }
    strat = game.strategy
    if isinstance(strat, IcebergStrategy):
        sig["front"] = strat._front.tolist()
        sig["back"] = strat._back.tolist()
        sig["layer"] = dict(strat._layer)
    return sig


def _warm(game, rng):
    """Fill the game toward capacity so streams hit real contention."""
    target = int(0.8 * N_BINS * CAPACITY)
    balls = []
    for ball in rng.sample(range(UNIVERSE), UNIVERSE // 2):
        if len(game) >= target:
            break
        if game.insert(ball) is not None:
            balls.append(ball)
    return balls


def _gen_stream(gen_game, rng, n_events, first_evt):
    """A valid interleaved stream, junk-padded past any failure."""
    inserts, evicts = [], []
    next_ball = UNIVERSE
    failed = False
    for k in range(n_events):
        if failed:
            # junk continuation: must never be applied by the kernel
            if k >= first_evt:
                evicts.append(evicts[-1] if evicts else inserts[0])
            inserts.append(next_ball)
            next_ball += 1
            continue
        if k >= first_evt:
            if not gen_game._bin_of:
                break
            victim = rng.choice(sorted(gen_game._bin_of))
            gen_game.delete(victim)
            evicts.append(victim)
        ball = next_ball
        next_ball += 1
        inserts.append(ball)
        if gen_game.insert(ball) is None:
            failed = True
    return inserts, evicts


def _ref_replay(game, inserts, evicts, first_evt):
    """The per-event reference: same interleave, stop after a failure."""
    bins = []
    failed = -1
    j = 0
    for k, ball in enumerate(inserts):
        if k >= first_evt:
            game.delete(evicts[j])
            j += 1
        b = game.insert(ball)
        if b is None:
            bins.append(-1)
            failed = k
            break
        bins.append(b)
    return bins, failed


@pytest.mark.parametrize("name", sorted(STRATEGIES))
@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_replay_matches_per_event_game(name, seed):
    rng = random.Random(seed)
    gen_game = _make_game(name)
    ref_game = _make_game(name)
    bat_game = _make_game(name)
    warm = _warm(gen_game, random.Random(seed))
    for g in (ref_game, bat_game):
        for ball in warm:
            g.insert(ball)
        # replicate warm-phase failures so counters start identical
        g.failures = gen_game.failures
        g.insertions = gen_game.insertions
    first_evt = rng.choice([0, 1, 5])
    inserts, evicts = _gen_stream(gen_game, rng, 120, first_evt)

    ref_bins, ref_failed = _ref_replay(ref_game, inserts, evicts, first_evt)
    decisions = replay_game_events(bat_game, inserts, evicts, first_evt)

    assert isinstance(decisions, BatchDecisions)
    assert decisions.bins == ref_bins
    assert decisions.failed == ref_failed
    assert decisions.applied == len(ref_bins)
    assert _state(bat_game) == _state(ref_game)


@pytest.mark.parametrize("name", sorted(STRATEGIES))
def test_choices_match_encoder_semantics(name):
    """`choices[k]` is exactly `choice_index(ball, bins[k])` — the code the
    TLB encoder stores, including first-match collision normalization."""
    checked = 0
    for seed in range(8):
        rng = random.Random(seed)
        gen_game = _make_game(name, seed=seed)
        bat_game = _make_game(name, seed=seed)
        warm = _warm(gen_game, random.Random(seed))
        for ball in warm:
            bat_game.insert(ball)
        inserts, evicts = _gen_stream(gen_game, rng, 80, 2)
        decisions = replay_game_events(bat_game, inserts, evicts, 2)
        for ball, b, choice in zip(inserts, decisions.bins, decisions.choices):
            if b < 0:
                continue
            assert choice == bat_game.strategy.choice_index(ball, b)
            checked += 1
    assert checked > 0


class TestContract:
    def test_declines_without_batch_hook(self):
        class NoBatch(OneChoiceStrategy):
            batch_place = None

        game = BallsAndBinsGame(8, NoBatch(), bin_capacity=2, seed=0)
        assert replay_game_events(game, [1, 2], [], 2) is None

    def test_empty_stream_is_noop(self):
        game = _make_game("greedy2")
        before = _state(game)
        decisions = replay_game_events(game, [], [], 0)
        assert decisions.bins == [] and decisions.failed == -1
        assert _state(game) == before

    def test_mismatched_evictions_rejected(self):
        game = _make_game("greedy2")
        with pytest.raises(ValueError, match="interleave"):
            replay_game_events(game, [1, 2, 3], [9], 0)
        with pytest.raises(ValueError, match="first_evt"):
            replay_game_events(game, [1], [], -1)

    def test_loads_array_identity_preserved(self):
        game = _make_game("one-choice")
        loads = game.loads
        replay_game_events(game, [1, 2, 3], [], 3)
        assert game.loads is loads
        assert int(loads.sum()) == 3


@pytest.mark.parametrize("name", sorted(STRATEGIES))
def test_batch_candidates_match_scalar(name):
    game = _make_game(name)
    strat = game.strategy
    balls = np.arange(0, 64, dtype=np.int64)
    cols = strat.batch_candidates(balls)
    assert len(cols) == strat.choices
    for i, col in enumerate(cols):
        for ball, bin_ in zip(balls.tolist(), col):
            assert bin_ == strat.candidates(ball)[i]
            assert bin_ == strat.candidate(ball, i)
