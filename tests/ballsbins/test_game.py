"""Tests for the dynamic balls-and-bins game mechanics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ballsbins import BallsAndBinsGame, OneChoiceStrategy


def make_game(n_bins=16, capacity=None, seed=0):
    return BallsAndBinsGame(
        n_bins, OneChoiceStrategy(), bin_capacity=capacity, seed=seed
    )


class TestInsertDelete:
    def test_insert_returns_bin(self):
        game = make_game()
        b = game.insert(1)
        assert b is not None and 0 <= b < 16
        assert game.bin_of(1) == b
        assert len(game) == 1

    def test_double_insert_raises(self):
        game = make_game()
        game.insert(1)
        with pytest.raises(ValueError):
            game.insert(1)

    def test_delete_returns_bin(self):
        game = make_game()
        b = game.insert(1)
        assert game.delete(1) == b
        assert 1 not in game
        assert len(game) == 0

    def test_delete_absent_raises(self):
        game = make_game()
        with pytest.raises(KeyError):
            game.delete(1)

    def test_reinsert_same_bin_one_choice(self):
        """With one hash, re-insertion must land in the same bin (stability
        of the hash, not of the placement)."""
        game = make_game()
        b1 = game.insert(42)
        game.delete(42)
        b2 = game.insert(42)
        assert b1 == b2

    def test_loads_match_contents(self):
        game = make_game(n_bins=8)
        for ball in range(50):
            game.insert(ball)
        assert int(game.loads.sum()) == 50
        for ball in range(0, 50, 2):
            game.delete(ball)
        assert int(game.loads.sum()) == 25


class TestMaxLoadTracking:
    def test_incremental_max_matches_numpy(self):
        game = make_game(n_bins=8, seed=3)
        rng = np.random.default_rng(0)
        live = []
        for step in range(2000):
            if live and rng.random() < 0.45:
                ball = live.pop(int(rng.integers(len(live))))
                game.delete(ball)
            else:
                ball = step + 10_000
                game.insert(ball)
                live.append(ball)
            assert game.max_load == int(game.loads.max())

    def test_peak_load_monotone(self):
        game = make_game(n_bins=4, seed=1)
        peaks = []
        for ball in range(40):
            game.insert(ball)
            peaks.append(game.peak_load)
        assert peaks == sorted(peaks)
        assert game.peak_load == game.max_load  # no deletions yet

    def test_average_load(self):
        game = make_game(n_bins=10)
        for ball in range(25):
            game.insert(ball)
        assert game.average_load == 2.5


class TestCapacitatedGame:
    def test_failures_counted_not_raised(self):
        game = make_game(n_bins=2, capacity=1, seed=0)
        placed = sum(1 for ball in range(10) if game.insert(ball) is not None)
        assert placed <= 2
        assert game.failures == 10 - placed
        assert game.max_load <= 1

    def test_failed_ball_not_live(self):
        game = make_game(n_bins=1, capacity=1, seed=0)
        assert game.insert(1) == 0
        assert game.insert(2) is None
        assert 2 not in game
        with pytest.raises(KeyError):
            game.delete(2)

    def test_capacity_frees_after_delete(self):
        game = make_game(n_bins=1, capacity=1, seed=0)
        game.insert(1)
        game.delete(1)
        assert game.insert(2) == 0


@st.composite
def op_sequences(draw):
    ops = draw(
        st.lists(st.tuples(st.booleans(), st.integers(0, 30)), min_size=1, max_size=200)
    )
    return ops


class TestGameInvariants:
    @given(op_sequences())
    @settings(max_examples=40)
    def test_loads_always_consistent(self, ops):
        game = make_game(n_bins=4, seed=7)
        live = set()
        for is_insert, ball in ops:
            if is_insert and ball not in live:
                game.insert(ball)
                live.add(ball)
            elif not is_insert and ball in live:
                game.delete(ball)
                live.remove(ball)
        assert len(game) == len(live)
        assert int(game.loads.sum()) == len(live)
        assert game.max_load == (int(game.loads.max()) if game.n_bins else 0)
        assert (game.loads >= 0).all()
