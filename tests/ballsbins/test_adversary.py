"""Tests for the oblivious adversary generators."""

import pytest

from repro.ballsbins import (
    batch_turnover,
    cyclic_reinsertion,
    fifo_churn,
    fill,
    random_churn,
)


def replay_live_set(ops):
    """Track the live set implied by an op sequence, asserting legality."""
    live = set()
    peak = 0
    for op, ball in ops:
        if op == "i":
            assert ball not in live, "insert of live ball"
            live.add(ball)
        else:
            assert ball in live, "delete of dead ball"
            live.remove(ball)
        peak = max(peak, len(live))
    return live, peak


class TestFill:
    def test_inserts_m_distinct(self):
        live, peak = replay_live_set(fill(10))
        assert len(live) == 10 and peak == 10

    def test_start_offset(self):
        ops = list(fill(3, start=100))
        assert ops == [("i", 100), ("i", 101), ("i", 102)]


class TestFifoChurn:
    def test_live_count_bounded_by_m(self):
        live, peak = replay_live_set(fifo_churn(8, 50))
        assert peak <= 8
        assert len(live) == 8

    def test_deletes_oldest_first(self):
        ops = list(fifo_churn(3, 2))
        assert ops[3] == ("d", 0)
        assert ops[5] == ("d", 1)


class TestRandomChurn:
    def test_legal_and_bounded(self):
        live, peak = replay_live_set(random_churn(10, 200, seed=0))
        assert peak <= 10 and len(live) == 10

    def test_seed_reproducible(self):
        a = list(random_churn(5, 50, seed=3))
        b = list(random_churn(5, 50, seed=3))
        assert a == b


class TestCyclicReinsertion:
    def test_reinserts_same_keys(self):
        ops = list(cyclic_reinsertion(4, 3))
        live, peak = replay_live_set(ops)
        assert live == {0, 1, 2, 3}
        assert peak == 4
        inserted = {b for op, b in ops if op == "i"}
        assert inserted == {0, 1, 2, 3}


class TestBatchTurnover:
    def test_bounded_live_set(self):
        live, peak = replay_live_set(batch_turnover(10, 5, 4))
        assert peak <= 10
        assert len(live) == 10

    def test_rejects_batch_bigger_than_m(self):
        with pytest.raises(ValueError):
            list(batch_turnover(4, 2, 5))
