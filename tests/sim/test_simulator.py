"""Tests for the simulate() driver and the Figure 1 sweep engine."""

import numpy as np
import pytest

from repro.mmu import BasePageMM
from repro.sim import (
    DEFAULT_HUGE_PAGE_SIZES,
    RunRecord,
    simulate,
    sweep_huge_page_sizes,
)


class TestSimulate:
    def test_warmup_resets_counters(self):
        mm = BasePageMM(4, 16)
        trace = [1, 2, 3, 1, 2, 3]
        ledger = simulate(mm, trace, warmup=3)
        assert ledger.accesses == 3
        assert ledger.ios == 0  # all warm

    def test_warmup_bounds_checked(self):
        mm = BasePageMM(4, 16)
        with pytest.raises(ValueError):
            simulate(mm, [1, 2], warmup=5)
        with pytest.raises(ValueError):
            simulate(mm, [1, 2], warmup=-1)

    def test_zero_warmup(self):
        mm = BasePageMM(4, 16)
        ledger = simulate(mm, [1, 1], warmup=0)
        assert ledger.ios == 1


class TestSweep:
    def test_default_sizes_are_paper_range(self):
        assert DEFAULT_HUGE_PAGE_SIZES == (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)

    def test_records_shape(self):
        rng = np.random.default_rng(0)
        trace = rng.integers(0, 4096, 5000)
        records = sweep_huge_page_sizes(
            trace, tlb_entries=32, ram_pages=1024, sizes=[1, 8, 64], warmup=1000
        )
        assert [r.params["h"] for r in records] == [1, 8, 64]
        assert all(isinstance(r, RunRecord) for r in records)
        assert all(r.ledger.accesses == 4000 for r in records)

    def test_monotone_tradeoff_on_uniform_trace(self):
        rng = np.random.default_rng(1)
        trace = rng.integers(0, 1 << 14, 20_000)
        records = sweep_huge_page_sizes(
            trace, tlb_entries=16, ram_pages=1 << 11, sizes=[1, 16, 256], warmup=5000
        )
        ios = [r.ios for r in records]
        misses = [r.tlb_misses for r in records]
        assert ios[0] < ios[1] < ios[2]
        assert misses[0] >= misses[1] >= misses[2]

    def test_run_record_cost(self):
        rec = RunRecord(
            algorithm="x",
            ledger=__import__("repro.core", fromlist=["CostLedger"]).CostLedger(
                ios=10, tlb_misses=100
            ),
            params={"h": 2},
        )
        assert rec.cost(0.1) == 10 + 10.0
        assert rec.as_row()["h"] == 2
        assert rec.as_row()["algorithm"] == "x"
