"""Tests for the physical-memory run allocator and fragmentation metrics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import OutOfMemoryError, PhysicalMemory


class TestBasicAllocation:
    def test_single_frames(self):
        mem = PhysicalMemory(8)
        frames = [mem.allocate() for _ in range(8)]
        assert sorted(frames) == list(range(8))
        assert mem.free_frames == 0
        with pytest.raises(OutOfMemoryError):
            mem.allocate()

    def test_run_allocation(self):
        mem = PhysicalMemory(16)
        start = mem.allocate(8)
        assert start == 0
        assert mem.free_frames == 8
        start2 = mem.allocate(8)
        assert start2 == 8

    def test_alignment(self):
        mem = PhysicalMemory(16)
        mem.allocate(1)  # frame 0
        aligned = mem.allocate(4, align=4)
        assert aligned % 4 == 0
        assert aligned == 4  # frames 1-3 skipped

    def test_free_and_reuse(self):
        mem = PhysicalMemory(8)
        a = mem.allocate(4)
        mem.free(a)
        assert mem.free_frames == 8
        assert mem.allocate(8) == 0  # coalesced back to one run

    def test_double_free_raises(self):
        mem = PhysicalMemory(8)
        a = mem.allocate(2)
        mem.free(a)
        with pytest.raises(KeyError):
            mem.free(a)

    def test_is_allocated(self):
        mem = PhysicalMemory(8)
        a = mem.allocate(2)
        assert mem.is_allocated(a)
        mem.free(a)
        assert not mem.is_allocated(a)


class TestFragmentation:
    def test_external_fragmentation_blocks_runs(self):
        """The paper's fragmentation cost: free memory exists but no run."""
        mem = PhysicalMemory(16)
        blocks = [mem.allocate(2) for _ in range(8)]
        for b in blocks[::2]:  # free every other block -> 8 free, max run 2
            mem.free(b)
        assert mem.free_frames == 8
        assert mem.largest_free_run() == 2
        with pytest.raises(OutOfMemoryError):
            mem.allocate(4)
        assert mem.external_fragmentation() > 0.5

    def test_no_fragmentation_when_contiguous(self):
        mem = PhysicalMemory(16)
        a = mem.allocate(8)
        assert mem.external_fragmentation() == 0.0
        mem.free(a)
        assert mem.external_fragmentation() == 0.0
        assert mem.free_run_count() == 1

    def test_full_memory_reports_zero(self):
        mem = PhysicalMemory(4)
        mem.allocate(4)
        assert mem.largest_free_run() == 0
        assert mem.external_fragmentation() == 0.0

    def test_coalescing_both_sides(self):
        mem = PhysicalMemory(12)
        a = mem.allocate(4)
        b = mem.allocate(4)
        c = mem.allocate(4)
        mem.free(a)
        mem.free(c)
        assert mem.free_run_count() == 2
        mem.free(b)  # merges with both neighbours
        assert mem.free_run_count() == 1
        assert mem.largest_free_run() == 12


class TestMemoryProperty:
    @given(
        st.lists(
            st.tuples(st.booleans(), st.integers(1, 8)),
            min_size=1,
            max_size=120,
        )
    )
    @settings(max_examples=50)
    def test_accounting_invariants(self, ops):
        """free_frames always equals frames minus live allocation total, and
        allocations never overlap."""
        mem = PhysicalMemory(64)
        live: dict[int, int] = {}
        for is_alloc, n in ops:
            if is_alloc:
                try:
                    start = mem.allocate(n)
                except OutOfMemoryError:
                    continue
                live[start] = n
            elif live:
                start = next(iter(live))
                mem.free(start)
                del live[start]
        assert mem.free_frames == 64 - sum(live.values())
        spans = sorted((s, s + n) for s, n in live.items())
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 <= s2, "overlapping allocations"
        assert mem.largest_free_run() <= mem.free_frames
