"""Tests for the static-h tuner."""

import pytest

from repro.core import ATCostModel
from repro.mmu import PhysicalHugePageMM
from repro.sim import best_static_h, simulate, static_h_costs
from repro.workloads import BimodalWorkload, UniformWorkload


class TestStaticHCosts:
    def test_costs_match_simulator(self):
        wl = BimodalWorkload(1 << 14, 1 << 8)
        trace = wl.generate(8000, seed=0)
        sizes = [1, 8, 64]
        costs = static_h_costs(
            trace, tlb_entries=16, ram_pages=1 << 10, epsilon=0.05, sizes=sizes
        )
        model = ATCostModel(epsilon=0.05)
        for h in sizes:
            mm = PhysicalHugePageMM(16, 1 << 10, huge_page_size=h)
            ledger = simulate(mm, trace)
            assert costs[h] == pytest.approx(model.cost(ledger))

    def test_best_is_argmin(self):
        wl = BimodalWorkload(1 << 14, 1 << 8)
        trace = wl.generate(8000, seed=1)
        costs = static_h_costs(
            trace, tlb_entries=16, ram_pages=1 << 10, epsilon=0.05, sizes=[1, 8, 64]
        )
        h, c = best_static_h(
            trace, tlb_entries=16, ram_pages=1 << 10, epsilon=0.05, sizes=[1, 8, 64]
        )
        assert c == min(costs.values())
        assert costs[h] == c

    def test_epsilon_moves_the_argmin(self):
        """The fragility claim: the optimal h depends on ε."""
        wl = BimodalWorkload(1 << 16, 1 << 10, p_hot=0.995)
        trace = wl.generate(20_000, seed=2)
        kwargs = dict(tlb_entries=64, ram_pages=1 << 12, sizes=[1, 16, 256])
        h_low, _ = best_static_h(trace, epsilon=0.001, **kwargs)
        h_high, _ = best_static_h(trace, epsilon=0.5, **kwargs)
        assert h_low < h_high  # cheap misses favour small pages and vice versa

    def test_uniform_workload_prefers_base_pages(self):
        trace = UniformWorkload(1 << 14).generate(10_000, seed=3)
        h, _ = best_static_h(
            trace, tlb_entries=16, ram_pages=1 << 10, epsilon=0.01, sizes=[1, 16, 256]
        )
        assert h == 1  # no locality: amplification only hurts
