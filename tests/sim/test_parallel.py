"""Tests for the parallel experiment runner (repro.sim.parallel).

The determinism contract: ``jobs=4`` must produce RunRecord series
identical to ``jobs=1`` (same seeds -> same IOs / TLB misses), with only
the wall-clock stamps (``elapsed_s`` / ``accesses_per_s``) allowed to
differ — exactly the fields ``diff_records`` ignores by default.

The crash helpers must live at module level (never closures) so they
pickle across the process boundary.
"""

import os
import signal
import time
from functools import partial

import numpy as np
import pytest

from repro.bench import diff_records, make_base_mm
from repro.mmu import BasePageMM
from repro.obs import (
    HeartbeatConfig,
    NullProbe,
    ObsSnapshot,
    SamplingProbe,
    TraceRecorder,
    aggregate,
    read_spool,
)
from repro.sim import (
    SimTask,
    TaskResult,
    resolve_jobs,
    run_records,
    run_tasks,
    spawn_seeds,
    sweep_huge_page_sizes,
)

POSIX_TIMERS = hasattr(signal, "setitimer")


def _payload(records):
    """Shape a record list like a saved result file, for diff_records."""
    return {"rows": [r.as_row() for r in records]}


def _no_wall(rows):
    """Metrics rows minus the monotonic ``wall`` stamp — the only field
    allowed to differ between a serial and a parallel replay."""
    return [{k: v for k, v in row.items() if k != "wall"} for row in rows]


class CrashOnce:
    """MM factory that hard-kills its worker the first time it is called.

    A marker file (not in-memory state: worker processes are disposable)
    distinguishes the first call from the retry.
    """

    def __init__(self, marker, tlb=8, ram=64):
        self.marker = str(marker)
        self.tlb = tlb
        self.ram = ram

    def __call__(self):
        if not os.path.exists(self.marker):
            with open(self.marker, "w") as fh:
                fh.write("crashed")
            os._exit(1)  # hard crash: no exception, no cleanup
        return BasePageMM(self.tlb, self.ram)


class CrashAlways:
    """MM factory that kills its worker on every call."""

    def __call__(self):
        os._exit(1)


class RaiseOnce:
    """MM factory that raises (a plain exception) the first time."""

    def __init__(self, marker, tlb=8, ram=64):
        self.marker = str(marker)
        self.tlb = tlb
        self.ram = ram

    def __call__(self):
        if not os.path.exists(self.marker):
            with open(self.marker, "w") as fh:
                fh.write("raised")
            raise RuntimeError("transient failure")
        return BasePageMM(self.tlb, self.ram)


class SleepForever:
    """MM factory that out-sleeps any reasonable task timeout."""

    def __call__(self):
        time.sleep(60)
        return BasePageMM(8, 64)  # pragma: no cover


def _trace(n=4000, pages=1 << 12, seed=0):
    return np.random.default_rng(seed).integers(0, pages, n)


def _grid(n=6, tlb=16, ram=512):
    return [
        SimTask(mm_factory=make_base_mm(tlb, ram), key=i, params={"h": i}, warmup=100)
        for i in range(n)
    ]


class TestDeterminism:
    def test_sweep_parallel_matches_serial(self):
        trace = _trace(6000, 1 << 13, seed=2)
        kwargs = dict(tlb_entries=32, ram_pages=1 << 11, sizes=[1, 8, 64], warmup=1000)
        serial = sweep_huge_page_sizes(trace, jobs=1, **kwargs)
        parallel = sweep_huge_page_sizes(trace, jobs=4, **kwargs)
        assert diff_records(_payload(serial), _payload(parallel)) == []
        # and the timing stamps exist on both paths
        for rec in serial + parallel:
            assert rec.params["elapsed_s"] > 0
            assert rec.params["accesses_per_s"] > 0

    def test_run_tasks_order_and_keys(self):
        results = run_tasks(_grid(5), trace=_trace(), jobs=4, chunksize=2)
        assert [r.key for r in results] == [0, 1, 2, 3, 4]
        assert all(isinstance(r, TaskResult) and r.ok for r in results)
        assert all(r.attempts == 1 for r in results)

    def test_run_records_matches_serial_grid(self):
        trace = _trace(5000)
        serial = run_records(_grid(6), trace=trace, jobs=1)
        pooled = run_records(_grid(6), trace=trace, jobs=3, chunksize=1)
        assert diff_records(_payload(serial), _payload(pooled)) == []

    def test_duplicate_keys_rejected(self):
        tasks = [SimTask(mm_factory=make_base_mm(8, 64), key=7) for _ in range(2)]
        with pytest.raises(ValueError, match="unique"):
            run_tasks(tasks, trace=_trace(100))

    def test_metrics_run_parallel_without_fallback(self, caplog):
        # per-task collectors are built in the workers, so interval metrics
        # no longer force jobs=1
        with caplog.at_level("WARNING", logger="repro.sim.parallel"):
            records = run_records(
                _grid(2), trace=_trace(1000), jobs=4, metrics_every=200
            )
        assert "serial-only" not in caplog.text
        assert all(rec.metrics is not None for rec in records)
        assert all(rec.metrics.windows for rec in records)

    def test_metrics_parallel_rows_match_serial(self):
        trace = _trace(2000)
        serial = run_records(_grid(3), trace=trace, jobs=1, metrics_every=300)
        pooled = run_records(_grid(3), trace=trace, jobs=3, metrics_every=300)
        assert [_no_wall(r.metrics.rows()) for r in serial] == [
            _no_wall(r.metrics.rows()) for r in pooled
        ]
        # every row carries a wall stamp, and stamps are monotone per task
        for r in serial + pooled:
            walls = [row["wall"] for row in r.metrics.rows()]
            assert walls == sorted(walls)

    def test_enabled_shared_probe_forces_serial(self, caplog):
        probe = TraceRecorder(capacity=64)
        with caplog.at_level("WARNING", logger="repro.sim.parallel"):
            results = run_tasks(_grid(2), trace=_trace(500), jobs=4, probe=probe)
        assert "serial-only" in caplog.text
        assert all(r.ok for r in results)
        assert probe.total_events > 0

    def test_disabled_probe_does_not_force_serial(self, caplog):
        with caplog.at_level("WARNING", logger="repro.sim.parallel"):
            results = run_tasks(
                _grid(2), trace=_trace(500), jobs=2, probe=NullProbe()
            )
        assert "serial-only" not in caplog.text
        assert all(r.ok for r in results)

    def test_snapshot_merge_bit_identical_across_jobs(self):
        # the PR 2 parity grid, instrumented: per-task SamplingProbes are
        # built in the workers and the merged snapshot must not depend on
        # how the tasks were sharded
        trace = _trace(6000, 1 << 13, seed=2)
        kwargs = dict(
            tlb_entries=32, ram_pages=1 << 11, sizes=[1, 8, 64], warmup=1000,
            snapshot=partial(SamplingProbe, 1 / 16, seed=3), metrics_every=500,
        )
        serial = sweep_huge_page_sizes(trace, jobs=1, **kwargs)
        pooled = sweep_huge_page_sizes(trace, jobs=4, **kwargs)
        merged_serial = ObsSnapshot.merge_all(r.snapshot for r in serial)
        merged_pooled = ObsSnapshot.merge_all(r.snapshot for r in pooled)
        assert merged_serial.counters == merged_pooled.counters
        assert merged_serial.hists == merged_pooled.hists
        assert merged_serial.meta == merged_pooled.meta
        assert _no_wall(merged_serial.rows) == _no_wall(merged_pooled.rows)
        assert merged_serial.meta["runs"] == len(serial) == 3
        # snapshot counters are the exact per-run ledgers, summed
        assert merged_serial.counters["ios"] == sum(r.ios for r in serial)
        assert merged_serial.hists["reuse_distance"].n > 0
        # and the simulated results themselves are still untouched
        assert diff_records(_payload(serial), _payload(pooled)) == []

    def test_snapshot_true_collects_counters_only(self):
        records = run_records(
            _grid(2), trace=_trace(1000), jobs=2, snapshot=True
        )
        merged = ObsSnapshot.merge_all(r.snapshot for r in records)
        assert merged.meta["runs"] == 2
        assert merged.counters["accesses"] == sum(
            r.ledger.accesses for r in records
        )
        assert merged.hists == {}

    def test_snapshot_and_probe_are_mutually_exclusive(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            run_tasks(
                _grid(1),
                trace=_trace(100),
                probe=TraceRecorder(),
                snapshot=True,
            )


class TestSeeds:
    def test_spawn_seeds_reproducible_and_distinct(self):
        a = spawn_seeds(123, 8)
        assert a == spawn_seeds(123, 8)
        assert len(set(a)) == 8
        assert a != spawn_seeds(124, 8)

    def test_spawn_seeds_edge_cases(self):
        assert spawn_seeds(0, 0) == []
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)

    def test_resolve_jobs(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs(None) == resolve_jobs(0) >= 1
        with pytest.raises(ValueError):
            resolve_jobs(-2)


class TestFaultTolerance:
    def test_worker_crash_is_retried_and_recovers(self, tmp_path):
        tasks = [
            SimTask(mm_factory=CrashOnce(tmp_path / "crash"), key=0, warmup=10),
            SimTask(mm_factory=make_base_mm(8, 64), key=1, warmup=10),
        ]
        results = run_tasks(tasks, trace=_trace(500), jobs=2, chunksize=1)
        assert [r.key for r in results] == [0, 1]
        assert results[0].ok and results[0].attempts == 2
        assert results[1].ok  # the innocent neighbour survives

    def test_permanent_crash_fails_only_its_cell(self):
        tasks = [
            SimTask(mm_factory=CrashAlways(), key=0, warmup=10),
            SimTask(mm_factory=make_base_mm(8, 64), key=1, warmup=10),
        ]
        results = run_tasks(tasks, trace=_trace(500), jobs=2, chunksize=1)
        assert not results[0].ok
        assert "crash" in results[0].error
        assert results[0].attempts == 2  # initial + one retry
        assert results[1].ok
        # run_records drops the dead cell, keeps the rest
        records = run_records(tasks, trace=_trace(500), jobs=2, chunksize=1)
        assert len(records) == 1

    def test_exception_is_retried_in_serial_and_pooled(self, tmp_path):
        for jobs, marker in ((1, "serial"), (2, "pooled")):
            task = SimTask(
                mm_factory=RaiseOnce(tmp_path / marker), key=0, warmup=10
            )
            (result,) = run_tasks([task], trace=_trace(500), jobs=jobs)
            assert result.ok and result.attempts == 2

    def test_exhausted_retries_surface_the_error(self):
        def boom():
            raise RuntimeError("always broken")

        (result,) = run_tasks(
            [SimTask(mm_factory=boom, key=0)], trace=_trace(100), jobs=1, retries=1
        )
        assert not result.ok
        assert "always broken" in result.error
        assert result.attempts == 2

    @pytest.mark.skipif(not POSIX_TIMERS, reason="needs signal.setitimer")
    def test_task_timeout_marks_cell_failed(self):
        tasks = [
            SimTask(mm_factory=SleepForever(), key=0),
            SimTask(mm_factory=make_base_mm(8, 64), key=1, warmup=10),
        ]
        results = run_tasks(
            tasks, trace=_trace(500), jobs=2, chunksize=1,
            task_timeout=0.3, retries=0,
        )
        assert not results[0].ok
        assert "timed out" in results[0].error
        assert results[1].ok


class TestPerTaskTraces:
    def test_task_trace_overrides_shared(self):
        hot = np.zeros(400, dtype=np.int64)  # one page: almost no IOs
        cold = np.arange(400, dtype=np.int64)  # all distinct: all IOs
        tasks = [
            SimTask(mm_factory=make_base_mm(8, 1 << 10), key=0, trace=hot),
            SimTask(mm_factory=make_base_mm(8, 1 << 10), key=1, trace=cold),
        ]
        for jobs in (1, 2):
            recs = run_records(tasks, jobs=jobs)
            assert recs[0].ios == 1
            assert recs[1].ios == 400

    def test_missing_trace_is_an_error_not_a_crash(self):
        (result,) = run_tasks(
            [SimTask(mm_factory=make_base_mm(8, 64), key=0)], jobs=1, retries=0
        )
        assert not result.ok
        assert "no trace" in result.error

    def test_stamp_adds_params(self):
        task = SimTask(
            mm_factory=make_base_mm(8, 64),
            key=0,
            params={"h": 1},
            stamp=_stamp_name,
        )
        for jobs in (1, 2):
            (rec,) = run_records([task], trace=_trace(300), jobs=jobs)
            assert rec.params["h"] == 1
            assert rec.params["mm_name"] == "base-page"


def _stamp_name(mm):
    return {"mm_name": mm.name}


class TestPicklability:
    def test_partial_factories_pickle(self):
        import pickle

        for factory in (
            make_base_mm(8, 64),
            partial(BasePageMM, 8, 64),
            CrashAlways(),
        ):
            clone = pickle.loads(pickle.dumps(factory))
            assert callable(clone)


class TestHeartbeatTelemetry:
    """The live-spool contract: heartbeats observe without perturbing, the
    spool aggregates to the same totals regardless of sharding, and the
    fault-tolerance path leaves structured retry records behind."""

    def _heartbeat(self, tmp_path, name, interval=512):
        return HeartbeatConfig(
            spool=str(tmp_path / f"{name}.jsonl"), interval=interval
        )

    def test_pooled_spool_aggregates_like_serial(self, tmp_path):
        trace = _trace(4000)
        serial_hb = self._heartbeat(tmp_path, "serial")
        pooled_hb = self._heartbeat(tmp_path, "pooled")
        serial = run_records(_grid(6), trace=trace, jobs=1, heartbeat=serial_hb)
        pooled = run_records(
            _grid(6), trace=trace, jobs=4, chunksize=1, heartbeat=pooled_hb
        )
        # telemetry never perturbs the simulation
        assert diff_records(_payload(serial), _payload(pooled)) == []
        a = aggregate(read_spool(serial_hb.spool))
        b = aggregate(read_spool(pooled_hb.spool))
        # same tasks, same final counters, everything done — bit-identical
        # totals whether one process wrote the spool or five did
        assert [t["task"] for t in a["tasks"]] == [t["task"] for t in b["tasks"]]
        assert all(t["state"] == "done" for t in a["tasks"] + b["tasks"])
        assert a["totals"]["counters"] == b["totals"]["counters"]
        assert a["totals"]["counters"]["accesses"] == 6 * len(trace)
        assert sum(t["done"] for t in b["tasks"]) == 6 * len(trace)

    def test_merged_spool_is_well_ordered(self, tmp_path):
        trace = _trace(4000)
        hb = self._heartbeat(tmp_path, "order", interval=400)
        run_records(_grid(6), trace=trace, jobs=4, chunksize=1, heartbeat=hb)
        records = read_spool(hb.spool)
        # writers interleave, but every record line survived intact ...
        assert all(r["kind"] in ("task_start", "phase", "heartbeat",
                                "task_end") for r in records)
        # ... wall stamps are monotone per worker (one clock per process)
        walls: dict[str, float] = {}
        for r in records:
            assert r["wall"] >= walls.get(r["worker"], 0.0)
            walls[r["worker"]] = r["wall"]
        # ... and each task's lifecycle reads start -> rising progress -> end
        for key in range(6):
            cell = [r for r in records if r.get("task") == key]
            assert cell[0]["kind"] == "task_start"
            assert cell[-1]["kind"] == "task_end"
            dones = [r["done"] for r in cell if r["kind"] == "heartbeat"]
            assert dones == sorted(dones)
            assert cell[-1]["accesses"] == len(trace)

    def test_heartbeat_composes_with_snapshot_probes(self, tmp_path):
        trace = _trace(2000)
        hb = self._heartbeat(tmp_path, "compose")
        records = run_records(
            _grid(2), trace=trace, jobs=2, chunksize=1, heartbeat=hb,
            snapshot=partial(SamplingProbe, 1 / 16, seed=3),
        )
        assert all(r.snapshot is not None for r in records)
        merged = ObsSnapshot.merge_all(r.snapshot for r in records)
        assert merged.hists["reuse_distance"].n > 0
        beats = [r for r in read_spool(hb.spool) if r["kind"] == "heartbeat"]
        assert beats  # both observers ran in the same replay

    def test_retry_leaves_structured_record(self, tmp_path):
        hb = self._heartbeat(tmp_path, "retry")
        task = SimTask(
            mm_factory=RaiseOnce(tmp_path / "marker"), key=5, warmup=10
        )
        (result,) = run_tasks([task], trace=_trace(500), jobs=1, heartbeat=hb)
        assert result.ok and result.attempts == 2
        retries = [r for r in read_spool(hb.spool) if r["kind"] == "task_retry"]
        assert len(retries) == 1
        assert retries[0]["task"] == 5
        assert retries[0]["attempt"] == 1
        assert "transient failure" in retries[0]["error"]
        assert retries[0]["worker"] == "parent"
        # the aggregate surfaces it too
        assert aggregate(read_spool(hb.spool))["retries"] == retries
