"""Tests for the miss-ratio-curve engine, checked against the simulator."""

import numpy as np
import pytest

from repro.mmu import PhysicalHugePageMM
from repro.sim import figure1_curves, simulate


class TestAgainstSimulator:
    @pytest.mark.parametrize("warmup", [0, 2000])
    @pytest.mark.parametrize("h", [1, 4, 32])
    def test_exact_match_with_lru_simulator(self, h, warmup):
        rng = np.random.default_rng(0)
        trace = rng.integers(0, 4096, 8000)
        tlb_entries, ram_pages = 32, 1024

        mm = PhysicalHugePageMM(tlb_entries, ram_pages, huge_page_size=h)
        ledger = simulate(mm, trace, warmup=warmup)

        (curve,) = figure1_curves(trace, [h], warmup=warmup)
        assert curve.tlb_misses(tlb_entries) == ledger.tlb_misses
        assert curve.ios(ram_pages) == ledger.ios

    def test_all_capacities_consistent(self):
        rng = np.random.default_rng(1)
        trace = rng.zipf(1.3, 6000) % 512
        (curve,) = figure1_curves(trace, [1])
        faults = [curve.faults(c) for c in range(1, 600)]
        assert faults == sorted(faults, reverse=True)  # monotone in capacity
        assert faults[-1] == len(np.unique(trace))  # only cold misses

    def test_multiple_sizes(self):
        rng = np.random.default_rng(2)
        trace = rng.integers(0, 2048, 5000)
        curves = figure1_curves(trace, [1, 8, 64])
        assert [c.h for c in curves] == [1, 8, 64]
        # bigger huge pages -> fewer distinct huge pages -> fewer TLB misses
        misses = [c.tlb_misses(16) for c in curves]
        assert misses == sorted(misses, reverse=True)

    def test_warmup_bounds(self):
        with pytest.raises(ValueError):
            figure1_curves([1, 2], [1], warmup=5)

    def test_capacity_validation(self):
        (curve,) = figure1_curves([1, 2, 1], [1])
        with pytest.raises(ValueError):
            curve.faults(0)


class TestCurveSemantics:
    def test_ios_amplification(self):
        trace = list(range(64)) * 2
        (c1,) = figure1_curves(trace, [8])
        # 8 huge pages, RAM of 32 base pages = 4 huge frames: LRU cycles
        assert c1.ios(32) == 8 * c1.faults(4)

    def test_tiny_ram_floor(self):
        trace = [0, 8, 0, 8]
        (c,) = figure1_curves(trace, [8])
        assert c.ios(4) == c.faults(1) * 8  # ram < h still holds one frame
