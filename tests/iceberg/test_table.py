"""Tests for the iceberg hash table: dict semantics, stability, and the
iceberg occupancy shape."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.iceberg import IcebergHashTable


class TestDictSemantics:
    def test_insert_get(self):
        t = IcebergHashTable(64, seed=0)
        t.insert("a", 1)
        assert t.get("a") == 1
        assert t["a"] == 1
        assert "a" in t and len(t) == 1

    def test_get_default(self):
        t = IcebergHashTable(64, seed=0)
        assert t.get("missing") is None
        assert t.get("missing", 7) == 7
        with pytest.raises(KeyError):
            t["missing"]

    def test_overwrite(self):
        t = IcebergHashTable(64, seed=0)
        t["k"] = 1
        t["k"] = 2
        assert t["k"] == 2
        assert len(t) == 1

    def test_delete(self):
        t = IcebergHashTable(64, seed=0)
        t["k"] = 1
        del t["k"]
        assert "k" not in t
        with pytest.raises(KeyError):
            del t["k"]

    def test_keys_iteration(self):
        t = IcebergHashTable(64, seed=0)
        for i in range(10):
            t[i] = i * i
        assert sorted(t.keys()) == list(range(10))

    def test_none_values_distinguished_from_absent(self):
        t = IcebergHashTable(64, seed=0)
        t["k"] = None
        assert "k" in t
        assert t["k"] is None


class TestStability:
    def test_slot_never_moves(self):
        t = IcebergHashTable(256, seed=1)
        t["pinned"] = 0
        slot = t.slot_of("pinned")
        for i in range(400):
            t[i] = i
        for i in range(0, 400, 2):
            del t[i]
        t["pinned"] = 99  # overwrite too
        assert t.slot_of("pinned") == slot

    def test_slot_reused_after_delete(self):
        t = IcebergHashTable(64, front_bin=4, seed=2)
        t["a"] = 1
        slot = t.slot_of("a")
        del t["a"]
        assert t.slot_of("a") is None
        t["a"] = 2
        assert t.slot_of("a") == slot  # same hash path, freed slot


class TestIcebergShape:
    def test_level1_holds_the_bulk(self):
        t = IcebergHashTable(4096, seed=3)
        for i in range(int(4096 * 0.9)):  # 90% load
            t[i] = i
        occ = t.level_occupancy()
        total = sum(occ.values())
        assert occ[1] / total > 0.85
        assert occ[3] / total < 0.01

    def test_over_capacity_degrades_not_breaks(self):
        t = IcebergHashTable(64, seed=4)
        for i in range(200):  # 3x capacity
            t[i] = i
        assert len(t) == 200
        for i in range(200):
            assert t[i] == i
        assert t.load_factor == pytest.approx(200 / 64)

    def test_occupancy_sums_to_len(self):
        t = IcebergHashTable(512, seed=5)
        rng = np.random.default_rng(0)
        live = set()
        for step in range(3000):
            k = int(rng.integers(0, 800))
            if k in live:
                del t[k]
                live.remove(k)
            else:
                t[k] = step
                live.add(k)
        assert sum(t.level_occupancy().values()) == len(t) == len(live)


class TestAgainstDictModel:
    @given(
        st.lists(
            st.tuples(st.sampled_from(["i", "d", "g"]), st.integers(0, 50),
                      st.integers(0, 1000)),
            max_size=300,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_dict(self, ops):
        t = IcebergHashTable(32, front_bin=4, back_bin=2, seed=6)
        model: dict = {}
        for op, k, v in ops:
            if op == "i":
                t[k] = v
                model[k] = v
            elif op == "d" and k in model:
                del t[k]
                del model[k]
            else:
                assert t.get(k) == model.get(k)
        assert len(t) == len(model)
        for k, v in model.items():
            assert t[k] == v
