"""Golden multi-tenant streams pinning the ASID-striped replay.

One golden JSONL per (scheme × tenant count) cell: the full per-access
event stream (global striped vpns included) of a round-robin
:class:`~repro.tenancy.MultiTenantSim` run, recorded with a
:class:`~repro.check.StreamTap` and committed under ``tests/data/golden``.
``tests/check/test_engine_parity.py`` replays each cell on both engines:
the object engine must reproduce the stream row for row; the array engine
(which may decline ASID-striped segments and silently fall back) must
still land on exactly the golden ledger totals — pinning that the
fallback is silent *and* correct.

Regenerate (only when multi-tenant behaviour is *supposed* to change)
with::

    PYTHONPATH=src python -m tests.tenancy.goldens
"""

from __future__ import annotations

from pathlib import Path

from repro.mmu.registry import make_mm
from repro.sim import spawn_seeds
from repro.tenancy import MultiTenantSim, Tenant
from repro.workloads import ZipfWorkload

__all__ = [
    "GOLDEN_DIR",
    "SCHEMES",
    "TENANT_COUNTS",
    "golden_cases",
    "build_tenants",
    "build_sim",
]

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "data" / "golden"

#: fixed cell geometry — small enough to replay in milliseconds, large
#: enough that tenants genuinely compete for the TLB and exit-shootdowns
#: fire mid-run (arrivals are staggered, so tenants finish at different
#: clocks).
VA_PAGES = 512
TLB_ENTRIES = 64
RAM_PAGES = 4096
ACCESSES = 600
QUANTUM = 53  # deliberately not a divisor of ACCESSES: ragged final turns
ARRIVAL_STEP = 211
SEED = 0

SCHEMES = ("base-page", "physical-huge", "decoupled")
TENANT_COUNTS = (2, 8)


def build_tenants(k: int) -> list[Tenant]:
    """A fresh tenant mix for one golden cell (streams are consumable)."""
    seeds = spawn_seeds(SEED, k)
    return [
        Tenant(
            f"t{i}",
            workload=ZipfWorkload(VA_PAGES, s=1.0),
            accesses=ACCESSES,
            arrival=i * ARRIVAL_STEP,
            seed=seeds[i],
        )
        for i in range(k)
    ]


def build_sim(
    algorithm: str,
    k: int,
    *,
    engine: str | None = None,
    attrib=None,
) -> MultiTenantSim:
    """A fresh simulator for one golden cell."""
    mm = make_mm(algorithm, TLB_ENTRIES, RAM_PAGES, seed=SEED)
    return MultiTenantSim(
        mm, build_tenants(k), "round-robin", quantum=QUANTUM, engine=engine,
        attrib=attrib,
    )


def golden_cases():
    """Every (scheme, tenant count, golden path) triple, in test order."""
    for algorithm in SCHEMES:
        for k in TENANT_COUNTS:
            name = f"mt_{algorithm.replace('+', '_')}__t{k}.jsonl"
            yield algorithm, k, GOLDEN_DIR / name


def record_mt_stream(algorithm: str, k: int):
    """The cell's per-access event rows (whole run — warmup is 0)."""
    from repro.check import StreamTap

    sim = build_sim(algorithm, k)
    tap = StreamTap()
    sim.mm.probe = tap  # not batch-safe: forces the per-access path
    try:
        sim.run()
    finally:
        from repro.obs import NULL_PROBE

        sim.mm.probe = NULL_PROBE
    return tap.as_tuples()


def regenerate() -> None:
    from repro.check import save_golden

    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for algorithm, k, path in golden_cases():
        rows = record_mt_stream(algorithm, k)
        save_golden(
            path,
            rows,
            algorithm=algorithm,
            meta={
                "tenants": k,
                "scheduler": "round-robin",
                "quantum": QUANTUM,
                "va_pages": VA_PAGES,
                "tlb_entries": TLB_ENTRIES,
                "ram_pages": RAM_PAGES,
                "accesses_per_tenant": ACCESSES,
                "arrival_step": ARRIVAL_STEP,
                "seed": SEED,
            },
        )
        print(f"wrote {path.name}: {len(rows)} rows")


if __name__ == "__main__":
    regenerate()
