"""Multi-tenant attribution pins over the golden cells.

Every golden (scheme × tenant count) cell must classify each TLB miss
into exactly one cause with the per-cause counts summing bit-identically
to the shared machine's ledger, partition those causes exactly across the
tenant records, populate the ASID × ASID interference matrix, and split
shootdown drops by reason — and the whole surface must reduce
bit-identically across ``--jobs``.
"""

import pytest

from repro.obs import ATTRIB_PREFIX, INTERF_PREFIX, AttributionProbe
from repro.tenancy import TenancyCellSpec, run_tenancy_cell, run_tenancy_grid

from .goldens import SCHEMES, TENANT_COUNTS, build_sim

CELLS = [(a, k) for a in SCHEMES for k in TENANT_COUNTS]


def _run_cell(algorithm, k, **kwargs):
    probe = AttributionProbe()
    sim = build_sim(algorithm, k, attrib=probe, **kwargs)
    return probe, sim.run()


@pytest.mark.parametrize("algorithm,k", CELLS)
class TestGoldenCells:
    def test_causes_conserve_against_the_ledger(self, algorithm, k):
        probe, result = _run_cell(algorithm, k)
        assert probe.family_total("tlb") == result.ledger.tlb_misses

    def test_tenant_records_partition_the_causes(self, algorithm, k):
        probe, result = _run_cell(algorithm, k)
        summed: dict = {}
        for record in result.records:
            for key, v in record.causes.items():
                if key.startswith(ATTRIB_PREFIX):
                    summed[key] = summed.get(key, 0) + v
        global_attrib = {
            key: v for key, v in probe.attrib_counters().items()
            if key.startswith(ATTRIB_PREFIX)
        }
        assert summed == global_attrib
        assert sum(
            v for key, v in summed.items()
            if key.startswith(f"{ATTRIB_PREFIX}tlb:")
        ) == result.ledger.tlb_misses

    def test_shootdowns_and_interference_populate(self, algorithm, k):
        probe, result = _run_cell(algorithm, k)
        totals = probe.cause_totals("tlb")
        if k >= 8:
            # the k=8 cells oversubscribe the shared TLB, so cross-tenant
            # capacity pressure (and with it the interference matrix) must
            # show up; at k=2 a huge-page TLB can fit both tenants and
            # legitimately classify every miss cold
            assert totals["capacity_cross"] > 0
            assert probe.matrix
            assert any(suf != ev for suf, ev in probe.matrix)
        drops = result.shootdown_drops_by_reason
        assert sum(drops.values()) == result.shootdown_drops
        assert set(drops) <= {"exit", "phi-change"}

    def test_tenant_snapshots_carry_causes_and_drops(self, algorithm, k):
        _probe, result = _run_cell(algorithm, k)
        snaps = [r.snapshot() for r in result.records]
        for record, snap in zip(result.records, snaps):
            for reason, dropped in record.drops.items():
                assert snap.counters[f"shootdown_drops:{reason}"] == dropped
        merged_tlb = sum(
            v
            for snap in snaps
            for key, v in snap.counters.items()
            if key.startswith(f"{ATTRIB_PREFIX}tlb:")
        )
        assert merged_tlb == result.ledger.tlb_misses


class TestSweepSurface:
    SPEC = dict(
        tenants=8, churn=0.5, remap_every=5, accesses_per_tenant=800,
        va_pages_per_tenant=256, tlb_entries=64, ram_pages=4096,
        attrib=True,
    )

    def test_row_carries_causes_and_per_reason_drops(self):
        spec = TenancyCellSpec(algorithm="base-page", **self.SPEC)
        row, snap = run_tenancy_cell(spec)
        assert row["drops_exit"] + row["drops_remap"] == row["shootdown_drops"]
        assert row["drops_remap"] > 0  # remap_every fired
        cause_sum = sum(
            row[f"tlb_{cause}"]
            for cause in ("cold", "capacity_self", "capacity_cross",
                          "shootdown", "remap", "promotion_flush")
        )
        assert cause_sum == row["tlb_misses"]
        assert row["tlb_remap"] > 0 and row["tlb_capacity_cross"] > 0
        assert any(k.startswith(INTERF_PREFIX) for k in snap.counters)

    def test_jobs_reduce_bit_identically(self):
        specs = [
            TenancyCellSpec(algorithm=a, **self.SPEC)
            for a in ("base-page", "decoupled", "physical-huge", "thp")
        ]
        rows1, merged1 = run_tenancy_grid(specs, jobs=1)
        rows4, merged4 = run_tenancy_grid(specs, jobs=4)
        assert rows1 == rows4
        assert merged1 == merged4
        assert merged1.as_dict() == merged4.as_dict()

    def test_attrib_off_leaves_rows_cause_free(self):
        spec = TenancyCellSpec(algorithm="base-page", tenants=2)
        row, snap = run_tenancy_cell(spec)
        assert not any(k.startswith("tlb_c") for k in row)
        assert not any(
            k.startswith((ATTRIB_PREFIX, INTERF_PREFIX)) for k in snap.counters
        )
