"""Scheduler policies: order, jitter statistics, proportional share."""

import numpy as np
import pytest

from repro.mmu import BasePageMM
from repro.tenancy import (
    SCHEDULERS,
    JitteredScheduler,
    MultiTenantSim,
    PriorityScheduler,
    RoundRobinScheduler,
    Scheduler,
    Tenant,
    make_scheduler,
)


def _tenants(k, accesses=300, priority=None):
    return [
        Tenant(
            f"t{i}",
            trace=np.arange(accesses) % 64,
            priority=priority[i] if priority else 1,
        )
        for i in range(k)
    ]


class TestRegistry:
    def test_names(self):
        assert set(SCHEDULERS) == {"round-robin", "jittered", "priority"}

    def test_make_scheduler(self):
        s = make_scheduler("jittered", 32, jitter=0.5, seed=1)
        assert isinstance(s, JitteredScheduler)
        assert s.quantum == 32

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            make_scheduler("fifo")

    def test_quantum_validated(self):
        with pytest.raises(ValueError):
            RoundRobinScheduler(0)

    def test_jitter_validated(self):
        with pytest.raises(ValueError, match="jitter"):
            JitteredScheduler(8, jitter=1.0)


class TestRoundRobin:
    def test_strict_cyclic_order(self):
        sched = RoundRobinScheduler(10)
        picks = [sched.pick([0, 1, 2], t)[0] for t in range(7)]
        assert picks == [0, 1, 2, 0, 1, 2, 0]

    def test_skips_non_runnable(self):
        sched = RoundRobinScheduler(10)
        assert sched.pick([0, 1, 2], 0)[0] == 0
        # tenant 1 left the runnable set: the cycle continues past it
        assert sched.pick([0, 2], 0)[0] == 2
        assert sched.pick([0, 2], 0)[0] == 0


class TestJittered:
    def test_quantum_bounded_and_deterministic(self):
        a = JitteredScheduler(16, jitter=0.3, seed=9)
        b = JitteredScheduler(16, jitter=0.3, seed=9)
        qa = [a.pick([0, 1], t)[1] for t in range(200)]
        qb = [b.pick([0, 1], t)[1] for t in range(200)]
        assert qa == qb
        assert all(1 <= q <= 16 for q in qa)
        assert len(set(qa)) > 1  # actually jittered

    def test_zero_jitter_is_round_robin(self):
        sched = JitteredScheduler(16, jitter=0.0, seed=0)
        assert [sched.pick([0, 1], t) for t in range(4)] == [
            (0, 16), (1, 16), (0, 16), (1, 16)
        ]


class TestPriority:
    def test_proportional_share(self):
        # priority 3 tenant should be served ~3x as often early on: with
        # equal demand it finishes strictly first
        tenants = _tenants(2, accesses=600, priority=[1, 3])
        mm = BasePageMM(32, 1024)
        result = MultiTenantSim(mm, tenants, "priority", quantum=20).run()
        assert result.records[1].finished < result.records[0].finished

    def test_no_starvation(self):
        tenants = _tenants(3, accesses=200, priority=[1, 5, 5])
        mm = BasePageMM(32, 1024)
        result = MultiTenantSim(mm, tenants, "priority", quantum=25).run()
        assert all(r.ledger.accesses == 200 for r in result.records)
        result.verify_counter_sums()

    def test_late_arrival_joins_at_the_pass_floor(self):
        sched = PriorityScheduler(10)
        sched.bind(_tenants(3, priority=[1, 1, 1]))
        for _ in range(10):
            sched.pick([0, 1], 0)
        # asid 2 arrives late; it must not be owed 10 turns of back-pay
        picks = [sched.pick([0, 1, 2], 0)[0] for _ in range(6)]
        assert picks.count(2) <= 3


class TestDriverIntegration:
    def test_misbehaving_scheduler_is_caught(self):
        class Rogue(Scheduler):
            name = "rogue"

            def pick(self, runnable, clock):
                return 99, self.quantum

        sim = MultiTenantSim(
            BasePageMM(8, 64), _tenants(1, accesses=50), Rogue(8)
        )
        with pytest.raises(RuntimeError, match="outside the runnable set"):
            sim.run()

    @pytest.mark.parametrize("name", sorted(SCHEDULERS))
    def test_every_scheduler_preserves_counter_sums(self, name):
        sched = (
            make_scheduler(name, 23, seed=4)
            if name == "jittered"
            else make_scheduler(name, 23)
        )
        mm = BasePageMM(32, 2048)
        result = MultiTenantSim(
            mm, _tenants(4, accesses=300, priority=[1, 2, 3, 4]), sched
        ).run()
        result.verify_counter_sums()
        assert result.ledger.accesses == 1200
