"""MultiTenantSim semantics: attribution, shootdowns, arrivals, warmup."""

import numpy as np
import pytest

from repro.check import InvariantViolation
from repro.mmu import BasePageMM, DecoupledMM, PhysicalHugePageMM
from repro.mmu.registry import make_mm
from repro.tenancy import MultiTenantSim, Tenant
from repro.workloads import UniformWorkload, ZipfWorkload


def _tenants(k, accesses=600, va_pages=256, arrival_step=0):
    return [
        Tenant(
            f"t{i}",
            workload=ZipfWorkload(va_pages, s=1.0),
            accesses=accesses,
            arrival=i * arrival_step,
            seed=i,
        )
        for i in range(k)
    ]


class TestTenant:
    def test_requires_exactly_one_source(self):
        with pytest.raises(ValueError, match="exactly one"):
            Tenant("t", workload=UniformWorkload(8), trace=[1, 2], accesses=2)
        with pytest.raises(ValueError, match="exactly one"):
            Tenant("t")

    def test_workload_requires_accesses(self):
        with pytest.raises(ValueError, match="accesses"):
            Tenant("t", workload=UniformWorkload(8))

    def test_trace_bounds_accesses(self):
        with pytest.raises(ValueError, match="exceeds trace length"):
            Tenant("t", trace=[0, 1, 2], accesses=5)

    def test_negative_pages_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            Tenant("t", trace=[0, -1, 2])

    def test_take_and_exhaustion(self):
        t = Tenant("t", trace=[5, 6, 7, 8, 9])
        assert t.va_pages == 10
        assert list(t.take(2)) == [5, 6]
        assert t.remaining == 3
        assert list(t.take(99)) == [7, 8, 9]
        assert t.done
        t.reset()
        assert t.remaining == 5 and t.ledger.accesses == 0

    def test_deterministic_stream(self):
        a = Tenant("a", workload=ZipfWorkload(64, s=1.0), accesses=100, seed=3)
        b = Tenant("b", workload=ZipfWorkload(64, s=1.0), accesses=100, seed=3)
        assert np.array_equal(a.trace, b.trace)


class TestAttribution:
    def test_counter_sums_match_global(self):
        mm = make_mm("decoupled", 32, 2048, seed=0)
        result = MultiTenantSim(mm, _tenants(4), quantum=41).run()
        result.verify_counter_sums()
        assert sum(r.ledger.accesses for r in result.records) == 4 * 600

    def test_aggregate_snapshot_equals_global_counters(self):
        mm = make_mm("base-page", 32, 2048, seed=0)
        result = MultiTenantSim(mm, _tenants(3), quantum=50).run()
        agg = result.aggregate_snapshot()
        for key in ("accesses", "ios", "tlb_misses", "tlb_hits"):
            assert agg.counters[key] == getattr(result.ledger, key)
        assert agg.meta["runs"] == 3

    def test_turn_accounting(self):
        mm = BasePageMM(32, 1024)
        result = MultiTenantSim(mm, _tenants(2, accesses=100), quantum=30).run()
        # 100 accesses at quantum 30 = 4 turns each, strictly alternating
        assert [r.turns for r in result.records] == [4, 4]
        assert result.turns == 8
        assert result.switches == 7


class TestShootdowns:
    def test_exit_shootdown_clears_the_slice(self):
        mm = PhysicalHugePageMM(64, 2048, huge_page_size=16)
        sim = MultiTenantSim(mm, _tenants(2, accesses=400), quantum=37)
        result = sim.run()
        assert len(result.shootdowns) == 2
        assert all(e.reason == "exit" for e in result.shootdowns)
        assert result.shootdown_drops > 0
        # nothing survives for either dead slice
        spans = sim.mm.inspector().translation_spans()
        assert spans == []

    def test_shootdown_is_ledger_free(self):
        mm = BasePageMM(32, 1024)
        sim = MultiTenantSim(mm, _tenants(2, accesses=300), quantum=50)
        result = sim.run()
        before = result.ledger.snapshot()
        # a manual (φ-change style) shootdown of a live-slice range
        sim.shootdown_tenant(0)
        assert result.ledger.snapshot() == before
        assert sim._shootdowns[-1].reason == "phi-change"

    def test_shootdown_on_exit_false_leaves_entries(self):
        mm = BasePageMM(64, 2048)
        sim = MultiTenantSim(
            mm, _tenants(2, accesses=400), quantum=37, shootdown_on_exit=False
        )
        result = sim.run()
        assert result.shootdowns == []
        assert list(sim.mm.inspector().translation_spans())

    def test_stale_entries_fail_coverage_validation(self):
        # with exit shootdowns disabled the driver makes no coverage
        # guarantee, so the run completes — but an explicit audit with the
        # dead ASIDs excluded must flag the surviving entries as stale
        mm = BasePageMM(64, 2048)
        sim = MultiTenantSim(
            mm,
            _tenants(2, accesses=400),
            quantum=37,
            shootdown_on_exit=False,
            validate=True,
        )
        sim.run()
        with pytest.raises(InvariantViolation, match="stale translation"):
            sim.mm.oracle.check_asid_coverage(sim.stride, set())

    def test_decoupled_shootdown_keeps_scheme_consistent(self):
        mm = DecoupledMM(32, 2048, seed=0)
        sim = MultiTenantSim(mm, _tenants(3, accesses=400), quantum=29)
        sim.run()
        # T-set/TLB sync survives the exit shootdowns
        mm.system.check_invariants()


class TestPhiRemap:
    def test_remap_fires_at_the_cadence(self):
        mm = BasePageMM(32, 1024)
        sim = MultiTenantSim(
            mm, _tenants(2, accesses=300), quantum=50, remap_every=2
        )
        result = sim.run()
        remaps = [e for e in result.shootdowns if e.reason == "phi-change"]
        exits = [e for e in result.shootdowns if e.reason == "exit"]
        # 300 accesses at quantum 50 = 6 turns each; a remap every 2nd
        # turn, except a tenant's final turn (the exit shootdown owns it)
        assert len(remaps) == 4
        assert len(exits) == 2
        assert sum(e.dropped for e in remaps) > 0

    def test_remap_is_ledger_free_and_fully_attributed(self):
        for algorithm in ("base-page", "physical-huge", "decoupled", "hybrid"):
            plain = make_mm(algorithm, 32, 2048, seed=0)
            base = MultiTenantSim(plain, _tenants(3), quantum=41).run()
            remapped_mm = make_mm(algorithm, 32, 2048, seed=0)
            remapped = MultiTenantSim(
                remapped_mm, _tenants(3), quantum=41, remap_every=3
            ).run()
            remapped.verify_counter_sums()
            # the flush itself is free and touches only the TLB: the access
            # count and the paging layer (ios) are unchanged, and its price
            # shows up purely as a different TLB hit/miss split
            assert remapped.ledger.accesses == base.ledger.accesses
            assert remapped.ledger.ios == base.ledger.ios
            assert any(
                e.reason == "phi-change" for e in remapped.shootdowns
            )

    def test_remap_validates_under_the_asid_oracle(self):
        mm = make_mm("decoupled", 32, 2048, seed=0)
        result = MultiTenantSim(
            mm, _tenants(3, accesses=400), quantum=29,
            remap_every=2, validate=True,
        ).run()
        assert any(e.reason == "phi-change" for e in result.shootdowns)

    def test_remap_engine_parity(self):
        # phi-change shootdowns between quanta must leave both engines
        # bit-identical — the array engine resumes from the flushed TLB
        for algorithm in ("decoupled", "hybrid"):
            ledgers = {}
            for engine in ("object", "array"):
                mm = make_mm(algorithm, 32, 2048, seed=0)
                result = MultiTenantSim(
                    mm, _tenants(3, accesses=500), quantum=37,
                    remap_every=2, engine=engine,
                ).run()
                ledgers[engine] = (
                    result.ledger.as_dict(),
                    [r.ledger.snapshot() for r in result.records],
                    len(result.shootdowns),
                )
            assert ledgers["object"] == ledgers["array"]

    def test_remap_every_validation(self):
        with pytest.raises(ValueError, match="remap_every"):
            MultiTenantSim(
                BasePageMM(8, 64), _tenants(1, accesses=10), remap_every=0
            )


class TestArrivalsAndWarmup:
    def test_late_arrival_fast_forwards_the_clock(self):
        tenants = [
            Tenant("early", trace=np.arange(100) % 50),
            Tenant("late", trace=np.arange(100) % 50, arrival=5000),
        ]
        mm = BasePageMM(32, 1024)
        result = MultiTenantSim(mm, tenants, quantum=64).run()
        assert result.records[1].finished >= 5000
        assert result.ledger.accesses == 200  # idle time issues nothing

    def test_warmup_resets_global_and_tenant_counters(self):
        mm = BasePageMM(32, 1024)
        result = MultiTenantSim(
            mm, _tenants(2, accesses=500), quantum=64, warmup=400
        ).run()
        assert result.ledger.accesses == 600  # 1000 total - 400 warm
        result.verify_counter_sums()

    def test_warmup_beyond_total_rejected(self):
        with pytest.raises(ValueError, match="warmup"):
            MultiTenantSim(
                BasePageMM(8, 64), _tenants(1, accesses=100), warmup=101
            )

    def test_rerun_is_rejected(self):
        sim = MultiTenantSim(BasePageMM(8, 64), _tenants(1, accesses=50))
        sim.run()
        with pytest.raises(RuntimeError, match="already consumed"):
            sim.run()

    def test_empty_tenants_rejected(self):
        with pytest.raises(ValueError, match="at least one tenant"):
            MultiTenantSim(BasePageMM(8, 64), [])


class TestAsidContractErrors:
    def test_isolation_violation_is_caught(self):
        # tenant claims va_pages=64 but its trace strays past the stride
        mm = BasePageMM(32, 1024)
        wide = Tenant("narrow", trace=[1, 2, 3], accesses=3)
        liar = Tenant("liar", trace=[0, 1, 200], accesses=3)
        liar._trace = np.array([0, 1, 200], dtype=np.int64)
        # narrow slice: bind via the narrow tenant only
        sim = MultiTenantSim(mm, [wide], quantum=8, validate=True)
        with pytest.raises(InvariantViolation, match="phi-isolation"):
            sim.mm.oracle.check_asid_isolation(sim.stride, 1, liar.trace)

    def test_rebind_to_different_stride_rejected(self):
        mm = BasePageMM(8, 64)
        mm.bind_asid_space(16)
        with pytest.raises(ValueError, match="already bound"):
            mm.bind_asid_space(64)
