"""Acceptance: a 120-tenant churn sweep under the oracle, zero violations.

The ISSUE's bar: at least 100 tenants arriving and exiting over one shared
algorithm, every access audited by the invariant oracle (ASID isolation
and coverage included), completing with no violation and exact per-tenant
cost attribution.
"""

import pytest

from repro.mmu.registry import make_mm
from repro.sim import spawn_seeds
from repro.tenancy import MultiTenantSim, Tenant
from repro.workloads import ZipfWorkload

N_TENANTS = 120
ACCESSES = 300
VA_PAGES = 96


def _churn_tenants():
    seeds = spawn_seeds(42, N_TENANTS)
    total = N_TENANTS * ACCESSES
    return [
        Tenant(
            f"t{i}",
            workload=ZipfWorkload(VA_PAGES, s=1.0),
            accesses=ACCESSES,
            # arrivals staggered over ~the first two thirds of the run:
            # tenants continuously enter while earlier ones exit
            arrival=(2 * total * i) // (3 * N_TENANTS),
            priority=1 + i % 3,
            seed=seeds[i],
        )
        for i in range(N_TENANTS)
    ]


@pytest.mark.parametrize("algorithm", ["base-page", "decoupled"])
def test_churn_sweep_survives_the_oracle(algorithm):
    mm = make_mm(algorithm, 48, 4096, seed=0)
    sim = MultiTenantSim(
        mm,
        _churn_tenants(),
        "round-robin",
        quantum=47,
        validate=True,  # any invariant violation raises and fails here
    )
    result = sim.run()

    result.verify_counter_sums()
    assert result.ledger.accesses == N_TENANTS * ACCESSES
    assert len(result.records) == N_TENANTS
    assert all(r.ledger.accesses == ACCESSES for r in result.records)
    # every tenant exited through a shootdown, and the churn actually
    # overlapped (far more switches than tenants)
    assert len(result.shootdowns) == N_TENANTS
    assert result.switches > N_TENANTS
    # nothing survives the last exit
    assert sim.mm.inspector().translation_spans() == []
