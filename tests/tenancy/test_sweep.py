"""Tenancy sweep grid: determinism across jobs, spec validation, rows."""

import pytest

from repro.tenancy import TenancyCellSpec, run_tenancy_cell, run_tenancy_grid

SPECS = [
    TenancyCellSpec(
        algorithm=algorithm,
        tenants=3,
        scheduler="round-robin",
        accesses_per_tenant=300,
        va_pages_per_tenant=128,
        tlb_entries=32,
        ram_pages=1024,
        churn=0.4,
        seed=11,
    )
    for algorithm in ("base-page", "physical-huge", "decoupled")
]


class TestSpec:
    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep workload"):
            TenancyCellSpec(algorithm="base-page", workload="markov")

    def test_churn_bounds(self):
        with pytest.raises(ValueError, match="churn"):
            TenancyCellSpec(algorithm="base-page", churn=1.0)


class TestCell:
    def test_row_shape_and_snapshot(self):
        row, snap = run_tenancy_cell(SPECS[0])
        assert row["algorithm"] == "base-page"
        assert row["accesses"] == 3 * 300
        assert row["shootdowns"] == 3
        assert row["cost"] > 0
        assert snap.counters["accesses"] == row["accesses"]
        assert snap.meta["runs"] == 3  # one per tenant

    def test_validated_cell_matches_plain_cell(self):
        import dataclasses

        plain, _ = run_tenancy_cell(SPECS[2])
        checked, _ = run_tenancy_cell(
            dataclasses.replace(SPECS[2], validate=True)
        )
        assert plain == checked  # validation never changes costs


class TestGrid:
    def test_jobs_parity(self):
        rows1, snap1 = run_tenancy_grid(SPECS, jobs=1)
        rows2, snap2 = run_tenancy_grid(SPECS, jobs=2)
        assert rows1 == rows2
        assert snap1 == snap2
        assert [r["algorithm"] for r in rows1] == [
            "base-page", "physical-huge", "decoupled"
        ]

    def test_decoupling_keeps_coverage_under_churn(self):
        # the headline comparison: at identical tenant churn, decoupling's
        # compressed TLB values cover h_max pages, so it sees far fewer
        # TLB misses than base pages at (near-)base-page IO traffic
        rows, _ = run_tenancy_grid(SPECS, jobs=1)
        by_alg = {r["algorithm"]: r for r in rows}
        base = by_alg["base-page"]
        dec = by_alg["decoupled"]
        phys = by_alg["physical-huge"]
        assert dec["tlb_misses"] < base["tlb_misses"]
        assert dec["ios"] <= base["ios"] * 1.05  # no amplification blow-up
        assert phys["ios"] > dec["ios"]  # physical pays page-fault amplification
