"""Hypothesis fuzz: isolation invariants under random tenant mixes.

Random (algorithm, tenant mix, scheduler, churn) combinations run under
the invariant oracle. The properties:

* **isolation** — no ASID ever observes a translation outside its slice
  (the oracle's ``phi-isolation`` / ``asid-coverage`` rules, checked per
  quantum and per exit);
* **conservation** — per-tenant counter sums equal the global counters,
  field by field;
* **hygiene** — exit shootdowns never leave stale entries, and whatever
  TLB surface the algorithm exposes ends structurally valid.
"""

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.mmu.registry import MM_NAMES, make_mm  # noqa: E402
from repro.tenancy import MultiTenantSim, Tenant, make_scheduler  # noqa: E402

TENANT = st.fixed_dictionaries(
    {
        "va_pages": st.integers(min_value=4, max_value=160),
        "accesses": st.integers(min_value=5, max_value=120),
        "arrival": st.integers(min_value=0, max_value=300),
        "priority": st.integers(min_value=1, max_value=4),
        "seed": st.integers(min_value=0, max_value=2**16),
    }
)

MIX = st.fixed_dictionaries(
    {
        "algorithm": st.sampled_from(MM_NAMES),
        "tenants": st.lists(TENANT, min_size=1, max_size=6),
        "scheduler": st.sampled_from(["round-robin", "jittered", "priority"]),
        "quantum": st.integers(min_value=1, max_value=40),
        "warmup_frac": st.floats(min_value=0.0, max_value=0.9),
        "shootdown_on_exit": st.booleans(),
        "seed": st.integers(min_value=0, max_value=2**16),
    }
)


def _build_tenants(spec):
    tenants = []
    for i, t in enumerate(spec["tenants"]):
        rng = np.random.default_rng(t["seed"])
        trace = rng.integers(0, t["va_pages"], size=t["accesses"], dtype=np.int64)
        tenants.append(
            Tenant(
                f"t{i}",
                trace=trace,
                arrival=t["arrival"],
                priority=t["priority"],
            )
        )
    return tenants


@given(spec=MIX)
@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_random_mixes_hold_all_invariants(spec):
    tenants = _build_tenants(spec)
    total = sum(t.accesses for t in tenants)
    mm = make_mm(spec["algorithm"], 16, 512, seed=spec["seed"])
    scheduler = (
        make_scheduler("jittered", spec["quantum"], jitter=0.3, seed=spec["seed"])
        if spec["scheduler"] == "jittered"
        else make_scheduler(spec["scheduler"], spec["quantum"])
    )
    sim = MultiTenantSim(
        mm,
        tenants,
        scheduler,
        warmup=int(spec["warmup_frac"] * total),
        shootdown_on_exit=spec["shootdown_on_exit"],
        validate=True,  # every access audited; first violation raises
    )
    result = sim.run()

    # conservation: per-tenant ledgers sum exactly to the machine ledger
    result.verify_counter_sums()
    assert result.clock >= total

    # hygiene: with exit shootdowns on, nothing survives for any slice
    spans = sim.mm.inspector().translation_spans()
    if spans is not None and spec["shootdown_on_exit"]:
        assert spans == [], f"stale spans after full churn: {spans[:4]}"
    # isolation (post-hoc audit): every surviving unit sits inside one
    # slice — dead slices included only when shootdowns were disabled
    live = set(range(len(tenants))) if not spec["shootdown_on_exit"] else set()
    sim.mm.oracle.check_asid_coverage(sim.stride, live)

    # structural invariants of whatever the algorithm exposes
    sim.mm.check_invariants()
