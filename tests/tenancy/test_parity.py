"""Single-tenant parity pin: MultiTenantSim is a strict generalization.

One tenant driven through :class:`~repro.tenancy.MultiTenantSim` must be
bit-identical — on the full ledger surface, ``as_dict()`` extras included
— to plain :func:`repro.sim.simulate` on the same algorithm and trace,
for **every** registry algorithm: ASID 0 is the identity mapping and
segmented ``run`` calls are contractually identical to one unsegmented
call, so the quantum boundaries must leave no trace in the counters.
"""

import pytest

from repro.mmu.registry import MM_NAMES, make_mm
from repro.sim import simulate
from repro.tenancy import MultiTenantSim, Tenant
from repro.workloads import ZipfWorkload

VA_PAGES = 1024
TLB_ENTRIES = 64
RAM_PAGES = 2048
ACCESSES = 3000
WARMUP = 1000
SEED = 7


def _trace():
    return ZipfWorkload(VA_PAGES, s=1.0).generate(ACCESSES, seed=SEED)


@pytest.mark.parametrize("algorithm", MM_NAMES)
class TestSingleTenantParity:
    def test_ledger_bit_identical_to_simulate(self, algorithm):
        trace = _trace()
        plain = make_mm(algorithm, TLB_ENTRIES, RAM_PAGES, seed=0)
        expected = simulate(plain, trace, warmup=WARMUP)

        mm = make_mm(algorithm, TLB_ENTRIES, RAM_PAGES, seed=0)
        sim = MultiTenantSim(
            mm, [Tenant("solo", trace=trace)], quantum=97, warmup=WARMUP
        )
        result = sim.run()
        assert result.ledger.as_dict() == expected.as_dict()
        # the sole tenant is credited exactly the machine's counters
        assert result.records[0].ledger.snapshot() == expected.snapshot()
        result.verify_counter_sums()

    def test_quantum_size_never_changes_counters(self, algorithm):
        trace = _trace()
        baselines = []
        for quantum in (1, 64, ACCESSES):
            mm = make_mm(algorithm, TLB_ENTRIES, RAM_PAGES, seed=0)
            sim = MultiTenantSim(
                mm, [Tenant("solo", trace=trace)], quantum=quantum
            )
            baselines.append(sim.run().ledger.as_dict())
        assert baselines[0] == baselines[1] == baselines[2]

    def test_validated_run_is_cost_identical(self, algorithm):
        trace = _trace()
        mm = make_mm(algorithm, TLB_ENTRIES, RAM_PAGES, seed=0)
        plain = MultiTenantSim(
            mm, [Tenant("solo", trace=trace)], quantum=97, warmup=WARMUP
        ).run()
        mm2 = make_mm(algorithm, TLB_ENTRIES, RAM_PAGES, seed=0)
        validated = MultiTenantSim(
            mm2,
            [Tenant("solo", trace=trace)],
            quantum=97,
            warmup=WARMUP,
            validate=True,
        ).run()
        assert validated.ledger.as_dict() == plain.ledger.as_dict()
